//! # systolic-service
//!
//! The multi-tenant simulation service (ROADMAP item 1, "a service
//! powering millions of users", `docs/service.md`): an HTTP/1.1 + JSON
//! front end over the [`systolic_interp::facade`]. The engine treats
//! the systolic array the way Delaval et al. treat a distributed
//! synchronous program — a long-lived shared resource, not a one-shot
//! run: elaborated modules stay hot in a service-owned
//! [`ModuleStore`] and compiled plans in a [`PlanCache`], shared by
//! every concurrent request.
//!
//! Layering (bottom-up):
//! - [`pool`] — the bounded worker pool: backpressure (429), deadline
//!   waits (504), per-worker panic isolation (structured 500);
//! - [`api`] — the wire vocabulary: request parsing, structured
//!   errors with `Deadlock`/`Protocol`/`Timeout` offender labels,
//!   `systolic-service-v1` responses;
//! - [`Service`] (this module) — plan resolution, cache plumbing, and
//!   the in-process handlers (`handle_run`, `handle_replay`,
//!   `stats_json`) the DST harness drives without sockets;
//! - [`http`] — `std::net` HTTP/1.1 keep-alive transport, thread per
//!   connection (the workspace builds offline: no tokio, no hyper).

pub mod api;
pub mod http;
pub mod pool;

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use api::{ApiError, OutputKind, ProgramRef, RunRequest};
use pool::Pool;
use systolic_core::{compile, Options as CoreOptions, SystolicProgram};
use systolic_interp::{
    observe_plan_in, simulate, simulate_verified, ExecutorChoice, ModuleStore, SimSpec,
};
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::ChannelPolicy;
use systolic_sim::{policy_by_name, Json, PlanSubject, ScheduleFile};

/// Capacity and policy knobs. Defaults suit a small box; `load_gen`'s
/// saturation scenario and the docs show how to scale them (see
/// `docs/service.md`, "Capacity tuning").
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Simulation worker threads.
    pub workers: usize,
    /// Backpressure queue depth; a full queue rejects with 429.
    pub queue_cap: usize,
    /// Largest accepted problem size per dimension (413 above it).
    pub max_size: i64,
    /// Deadline applied when a request names none.
    pub default_deadline_ms: u64,
    /// Hard ceiling a request's own deadline is clamped to.
    pub max_deadline_ms: u64,
    /// Compiled-plan cache entries (design keys + source hashes).
    pub plan_cache_cap: usize,
    /// Module-store FIFO capacities (skeletons, instantiated modules).
    pub module_caps: (usize, usize),
    /// Expose `POST /debug/panic` (tests only): a request whose job
    /// panics inside a worker, proving isolation end-to-end.
    pub debug_panic_route: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            workers: cores.max(2),
            queue_cap: 256,
            max_size: 64,
            default_deadline_ms: 10_000,
            max_deadline_ms: 60_000,
            plan_cache_cap: 32,
            module_caps: (32, 64),
            debug_panic_route: false,
        }
    }
}

/// A compiled program ready to elaborate: the plan plus the input
/// variables seeded data goes into by default.
pub struct ResolvedProgram {
    pub label: String,
    pub plan: SystolicProgram,
    pub default_inputs: Vec<String>,
}

#[derive(Default)]
struct PlanCacheInner {
    map: HashMap<String, Arc<ResolvedProgram>>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded FIFO cache of compiled plans in front of the module store:
/// synthesis + compilation dominate cold-request latency, and warm
/// requests (the common case for a design gallery) skip both.
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    cap: usize,
}

impl PlanCache {
    pub fn new(cap: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(PlanCacheInner::default()),
            cap: cap.max(1),
        }
    }

    /// Look up `key`, building (and caching) with `build` on a miss.
    /// The mutex is held across the build, so concurrent cold requests
    /// for one key compile it exactly once — the same exactness
    /// contract as `ModuleStore`.
    pub fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<ResolvedProgram, ApiError>,
    ) -> Result<Arc<ResolvedProgram>, ApiError> {
        let mut g = self.inner.lock().unwrap();
        if let Some(p) = g.map.get(key).cloned() {
            g.hits += 1;
            return Ok(p);
        }
        g.misses += 1;
        let built = Arc::new(build()?);
        if g.map.len() >= self.cap {
            if let Some(old) = g.order.pop_front() {
                g.map.remove(&old);
                g.evictions += 1;
            }
        }
        g.order.push_back(key.to_string());
        g.map.insert(key.to_string(), built.clone());
        Ok(built)
    }

    /// `(hits, misses, evictions, len)`.
    pub fn stats(&self) -> (u64, u64, u64, usize) {
        let g = self.inner.lock().unwrap();
        (g.hits, g.misses, g.evictions, g.map.len())
    }
}

/// The service: shared caches + the worker pool. Wrap in an [`Arc`] and
/// hand to [`http::serve`], or call the `handle_*` methods directly
/// (the DST integration tests do — same code path, no sockets).
pub struct Service {
    pub config: ServiceConfig,
    pub modules: ModuleStore,
    pub plans: PlanCache,
    pub pool: Pool,
}

impl Service {
    pub fn new(config: ServiceConfig) -> Arc<Service> {
        let (skel_cap, mod_cap) = config.module_caps;
        Arc::new(Service {
            pool: Pool::new(config.workers, config.queue_cap),
            modules: ModuleStore::with_capacity(skel_cap, mod_cap),
            plans: PlanCache::new(config.plan_cache_cap),
            config,
        })
    }

    /// Resolve a gallery design key or inline source through the plan
    /// cache.
    pub fn resolve(&self, program: &ProgramRef) -> Result<Arc<ResolvedProgram>, ApiError> {
        match program {
            ProgramRef::Design(key) => {
                let cache_key = format!("design:{key}");
                self.plans
                    .get_or_build(&cache_key, || compile_design(key))
            }
            ProgramRef::Source(src) => {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                src.hash(&mut h);
                let cache_key = format!("source:{:016x}", h.finish());
                self.plans
                    .get_or_build(&cache_key, || compile_source(src))
            }
        }
    }

    /// The deadline a request actually gets: its own ask clamped to the
    /// configured ceiling, or the default.
    fn effective_deadline_ms(&self, req: &RunRequest) -> u64 {
        req.deadline_ms
            .unwrap_or(self.config.default_deadline_ms)
            .clamp(1, self.config.max_deadline_ms)
    }

    /// `POST /v1/run`, end to end: parse on the calling thread (cheap,
    /// and malformed requests must not consume pool slots), then
    /// resolve + elaborate + simulate on the worker pool under the
    /// request deadline.
    pub fn handle_run(self: &Arc<Self>, body: &str) -> (u16, String) {
        let req = match api::parse_run_request(body) {
            Ok(r) => r,
            Err(e) => return (e.status, e.to_json()),
        };
        let deadline_ms = self.effective_deadline_ms(&req);
        let svc = Arc::clone(self);
        self.pool.run(
            Duration::from_millis(deadline_ms),
            deadline_ms,
            Box::new(move || match svc.execute(&req, deadline_ms) {
                Ok(body) => (200, body),
                Err(e) => (e.status, e.to_json()),
            }),
        )
    }

    /// The worker-side request body: everything after admission.
    fn execute(&self, req: &RunRequest, deadline_ms: u64) -> Result<String, ApiError> {
        let resolved = self.resolve(&req.program)?;
        let plan = &resolved.plan;
        if req.sizes.len() != plan.source.sizes.len() {
            return Err(ApiError::bad_request(format!(
                "design '{}' takes {} size(s), request gave {}",
                resolved.label,
                plan.source.sizes.len(),
                req.sizes.len()
            )));
        }
        for &s in &req.sizes {
            if s < 1 {
                return Err(ApiError::bad_request(format!(
                    "problem sizes must be positive (got {s})"
                )));
            }
            if s > self.config.max_size {
                return Err(ApiError::size_limit(s, self.config.max_size));
            }
        }
        let mut env = Env::new();
        for (&v, &val) in plan.source.sizes.iter().zip(&req.sizes) {
            env.bind(v, val);
        }
        let mut store = HostStore::allocate(&plan.source, &env);
        let inputs: Vec<String> = match &req.inputs {
            Some(list) => list.clone(),
            None => resolved.default_inputs.clone(),
        };
        for (i, name) in inputs.iter().enumerate() {
            if store.try_get(name).is_none() {
                return Err(ApiError::bad_request(format!(
                    "unknown input variable '{name}'"
                )));
            }
            store.fill_random(name, req.seed.wrapping_add(i as u64), -9, 9);
        }

        match req.output {
            OutputKind::Stores => {
                let executor = ExecutorChoice::parse(&req.executor, req.workers)
                    .expect("executor validated at parse time");
                let sched = match &req.schedule {
                    None => None,
                    Some((policy, seed)) => Some(policy_by_name(policy, *seed).ok_or_else(
                        || {
                            ApiError::bad_request(format!(
                                "unknown schedule policy '{policy}' (fifo|random|lifo|prio-inv)"
                            ))
                        },
                    )?),
                };
                let spec = SimSpec {
                    batch: req.batch,
                    opt: req.opt,
                    wavefront: req.wavefront,
                    kernel: req.kernel,
                    executor,
                    deadline: Duration::from_millis(deadline_ms),
                    sched,
                };
                let run = if req.verify {
                    simulate_verified(&self.modules, plan, &env, &store, spec)
                        .map_err(|e| ApiError::from_verify_error(&e))?
                } else {
                    simulate(&self.modules, plan, &env, &store, spec)
                        .map_err(|e| ApiError::from_exec_error(&e))?
                };
                Ok(api::render_stores(
                    &resolved.label,
                    executor.label(),
                    &run,
                    req.verify,
                ))
            }
            OutputKind::Metrics => {
                let obs = observe_plan_in(
                    &self.modules,
                    plan,
                    &env,
                    &store,
                    ChannelPolicy::Rendezvous,
                    &Default::default(),
                )
                .map_err(|e| ApiError::from_exec_error(&e))?;
                Ok(obs.metrics_json())
            }
            OutputKind::Trace => {
                let obs = observe_plan_in(
                    &self.modules,
                    plan,
                    &env,
                    &store,
                    ChannelPolicy::Rendezvous,
                    &Default::default(),
                )
                .map_err(|e| ApiError::from_exec_error(&e))?;
                Ok(obs.perfetto_json)
            }
        }
    }

    /// `POST /v1/replay`: a `systolic-schedule-v1` counterexample file
    /// replayed under the worker pool. Returns whether the recorded
    /// schedule still diverges from the FIFO baseline.
    pub fn handle_replay(self: &Arc<Self>, body: &str) -> (u16, String) {
        let file = match ScheduleFile::from_json(body) {
            Ok(f) => f,
            Err(e) => {
                let e = ApiError::bad_request(format!("malformed schedule file: {e}"));
                return (e.status, e.to_json());
            }
        };
        let deadline_ms = self.config.default_deadline_ms;
        self.pool.run(
            Duration::from_millis(deadline_ms),
            deadline_ms,
            Box::new(move || match replay_schedule(&file) {
                Ok(report) => (
                    200,
                    Json::Obj(vec![
                        ("schema".into(), Json::Str(api::SCHEMA.into())),
                        ("design".into(), Json::Str(file.design.clone())),
                        ("reproduced".into(), Json::Bool(report.reproduced)),
                        (
                            "rounds_replayed".into(),
                            Json::Num(report.rounds_replayed as i64),
                        ),
                        (
                            "reason".into(),
                            match report.reason {
                                Some(r) => Json::Str(r),
                                None => Json::Null,
                            },
                        ),
                    ])
                    .to_string(),
                ),
                Err(e) => (e.status, e.to_json()),
            }),
        )
    }

    /// `GET /stats`: module-store counters, plan-cache counters, pool
    /// gauges — one JSON document.
    pub fn stats_json(&self) -> String {
        use std::sync::atomic::Ordering;
        let (ph, pm, pe, plen) = self.plans.stats();
        let s = &self.pool.stats;
        format!(
            concat!(
                "{{\"schema\":\"{}\",",
                "\"elab_cache\":{},",
                "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}},",
                "\"pool\":{{\"workers\":{},\"queue_cap\":{},\"submitted\":{},\"completed\":{},",
                "\"rejected\":{},\"panics\":{},\"deadline_expired\":{},",
                "\"in_flight\":{},\"max_in_flight\":{}}}}}"
            ),
            api::SCHEMA,
            self.modules.stats().to_json(),
            ph,
            pm,
            pe,
            plen,
            self.pool.n_workers,
            self.pool.queue_cap,
            s.submitted.load(Ordering::SeqCst),
            s.completed.load(Ordering::SeqCst),
            s.rejected.load(Ordering::SeqCst),
            s.panics.load(Ordering::SeqCst),
            s.deadline_expired.load(Ordering::SeqCst),
            s.in_flight.load(Ordering::SeqCst),
            s.max_in_flight.load(Ordering::SeqCst),
        )
    }

    /// `POST /debug/panic` (gated by
    /// [`ServiceConfig::debug_panic_route`]): a request whose job
    /// panics inside a worker — the panic-isolation contract,
    /// exercisable over the wire.
    pub fn handle_debug_panic(self: &Arc<Self>) -> (u16, String) {
        self.pool.run(
            Duration::from_millis(self.config.default_deadline_ms),
            self.config.default_deadline_ms,
            Box::new(|| panic!("deliberate debug panic")),
        )
    }
}

/// Compile a gallery design key: the four appendix designs by label,
/// `fir` on a derived array — the same resolution as the DST registry
/// (`systolic_sim::subject_for`). Public so `load_gen` and the
/// integration tests can build client-side sequential oracles from the
/// exact same plan the service serves.
pub fn compile_design(key: &str) -> Result<ResolvedProgram, ApiError> {
    let (program, array, inputs) = if key == "fir" {
        let p = systolic_ir::gallery::fir_filter();
        let a = systolic_synthesis::derive_array(&p, 2, 4)
            .ok_or_else(|| ApiError::internal("fir array derivation failed"))?;
        (p, a, vec!["h".to_string(), "x".to_string()])
    } else {
        let found = systolic_synthesis::placement::paper::all()
            .into_iter()
            .find(|(label, _, _)| *label == key);
        let Some((_, p, a)) = found else {
            return Err(ApiError::unknown_design(key));
        };
        (p, a, vec!["a".to_string(), "b".to_string()])
    };
    let plan = compile(&program, &array, &CoreOptions::default())
        .map_err(|e| ApiError::new(422, "compile", format!("compile failed: {e}")))?;
    Ok(ResolvedProgram {
        label: key.to_string(),
        plan,
        default_inputs: inputs,
    })
}

/// Compile inline `.sys` source: parse, validate the Appendix A
/// envelope, derive an array, compile. Every failure is a structured
/// 400/422 — the parser's message reaches the client, a panic never
/// does.
pub fn compile_source(src: &str) -> Result<ResolvedProgram, ApiError> {
    let program = systolic_lang::parse(src)
        .map_err(|e| ApiError::parse(format!("parse error: {e}")))?;
    systolic_ir::validate(&program, 4).map_err(|violations| {
        let msgs: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        ApiError::new(
            422,
            "validate",
            format!("program outside the compilable envelope: {}", msgs.join("; ")),
        )
    })?;
    let array = systolic_synthesis::derive_array(&program, 2, 4).ok_or_else(|| {
        ApiError::new(
            422,
            "no-array",
            "no valid systolic array within the search bound",
        )
    })?;
    let plan = compile(&program, &array, &CoreOptions::default())
        .map_err(|e| ApiError::new(422, "compile", format!("compile failed: {e}")))?;
    Ok(ResolvedProgram {
        label: "source".to_string(),
        plan,
        default_inputs: Vec::new(),
    })
}

/// Resolve a schedule file to a subject and replay it — the CLI's
/// `replay` logic behind the service boundary.
fn replay_schedule(file: &ScheduleFile) -> Result<systolic_sim::ReplayReport, ApiError> {
    let subject: Box<dyn systolic_sim::DstSubject> = if file.design == "source" {
        let src = file.source.as_ref().ok_or_else(|| {
            ApiError::bad_request("schedule file has design \"source\" but no embedded program")
        })?;
        let resolved = compile_source(src)?;
        let inputs: Vec<String> = resolved
            .plan
            .source
            .variables
            .iter()
            .map(|v| v.name.clone())
            .collect();
        let input_refs: Vec<&str> = inputs.iter().map(|s| s.as_str()).collect();
        Box::new(
            PlanSubject::from_plan(
                "source",
                Some(src.clone()),
                &resolved.plan,
                &file.sizes,
                &input_refs,
                file.input_seed,
            )
            .map_err(|e| ApiError::new(422, "elaborate", e))?,
        )
    } else {
        systolic_sim::subject_for(&file.design, &file.sizes, file.input_seed)
            .map_err(|e| ApiError::unknown_design(&file.design).with_message(e))?
    };
    systolic_sim::replay(subject.as_ref(), file)
        .map_err(|e| ApiError::internal(format!("replay failed: {e}")))
}

impl ApiError {
    fn with_message(mut self, message: String) -> ApiError {
        self.message = message;
        self
    }
}
