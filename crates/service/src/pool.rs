//! The bounded worker pool every simulation runs on: fixed worker
//! threads fed by a `sync_channel` whose capacity is the explicit
//! backpressure queue. `try_send` on a full queue is an immediate
//! overload rejection (HTTP 429) — the pool never buffers unboundedly
//! and never blocks the accept path.
//!
//! Isolation contract: each job runs under `catch_unwind`, so a
//! panicking request degrades to a structured 500 for that one caller
//! while the worker thread survives for the next job. Panic payloads
//! are counted and *dropped* — raw panic text never crosses the wire.
//!
//! Deadline contract: the submitting caller waits on the job's reply
//! channel with `recv_timeout`. An expired deadline yields a structured
//! 504 immediately; the worker is not cancelled (the cooperative engine
//! has no preemption points) but its eventual result is discarded and
//! the in-flight gauge still drains. Threaded/partitioned executors
//! additionally bound their internal rendezvous waits by the same
//! budget, surfacing `RunError::Timeout` with the blocked scope.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::ApiError;

/// A finished job: HTTP status plus body.
pub type JobResult = (u16, String);

type Job = Box<dyn FnOnce() -> JobResult + Send + 'static>;

/// Monotone pool counters, exposed on `/stats`.
#[derive(Default)]
pub struct PoolStats {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub panics: AtomicU64,
    pub deadline_expired: AtomicU64,
    pub in_flight: AtomicU64,
    pub max_in_flight: AtomicU64,
}

impl PoolStats {
    fn enter(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_in_flight.fetch_max(now, Ordering::SeqCst);
    }

    fn exit(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The pool: `workers` threads over a `queue_cap`-deep submission
/// queue.
pub struct Pool {
    tx: SyncSender<(Job, std::sync::mpsc::SyncSender<JobResult>)>,
    pub stats: Arc<PoolStats>,
    workers: Vec<JoinHandle<()>>,
    pub queue_cap: usize,
    pub n_workers: usize,
}

impl Pool {
    pub fn new(workers: usize, queue_cap: usize) -> Pool {
        let workers = workers.max(1);
        let queue_cap = queue_cap.max(1);
        let (tx, rx) = sync_channel::<(Job, std::sync::mpsc::SyncSender<JobResult>)>(queue_cap);
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let stats = Arc::new(PoolStats::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("sim-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().unwrap();
                            guard.recv()
                        };
                        let Ok((job, reply)) = job else { return };
                        stats.enter();
                        let result = catch_unwind(AssertUnwindSafe(job)).unwrap_or_else(|_| {
                            // The payload is deliberately dropped: the
                            // wire sees a structured 500, never the
                            // panic text.
                            stats.panics.fetch_add(1, Ordering::SeqCst);
                            let e = ApiError {
                                status: 500,
                                kind: "panic",
                                message: "worker panicked while serving the request".into(),
                                offenders: vec![format!("sim-worker-{i}")],
                            };
                            (e.status, e.to_json())
                        });
                        stats.completed.fetch_add(1, Ordering::SeqCst);
                        stats.exit();
                        // The caller may have given up on its deadline;
                        // a closed reply channel is not an error.
                        let _ = reply.send(result);
                    })
                    .expect("spawn sim worker")
            })
            .collect();
        Pool {
            tx,
            stats,
            workers: handles,
            queue_cap,
            n_workers: workers,
        }
    }

    /// Submit a job and wait up to `deadline` for its result.
    /// Full queue → 429 immediately; expired deadline → 504 immediately
    /// (the job may still complete; its result is discarded).
    pub fn run(&self, deadline: Duration, deadline_ms: u64, job: Job) -> JobResult {
        match self.submit(job) {
            Err(e) => (e.status, e.to_json()),
            Ok(rx) => match rx.recv_timeout(deadline) {
                Ok(r) => r,
                Err(RecvTimeoutError::Timeout) => {
                    self.stats.deadline_expired.fetch_add(1, Ordering::SeqCst);
                    let e = ApiError::deadline(deadline_ms);
                    (e.status, e.to_json())
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let e = ApiError::internal("worker pool shut down mid-request");
                    (e.status, e.to_json())
                }
            },
        }
    }

    /// Enqueue without waiting; the receiver resolves when a worker
    /// finishes.
    pub fn submit(&self, job: Job) -> Result<Receiver<JobResult>, ApiError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.stats.submitted.fetch_add(1, Ordering::SeqCst);
        match self.tx.try_send((job, reply_tx)) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => {
                self.stats.rejected.fetch_add(1, Ordering::SeqCst);
                Err(ApiError::overloaded(self.queue_cap))
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(ApiError::internal("worker pool shut down"))
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the submission channel lets every worker's `recv`
        // return Err and the thread exit.
        let (dead_tx, _) = sync_channel(1);
        drop(std::mem::replace(&mut self.tx, dead_tx));
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_panicking_job_degrades_to_a_structured_500_and_the_worker_survives() {
        let pool = Pool::new(1, 4);
        let (status, body) = pool.run(
            Duration::from_secs(5),
            5000,
            Box::new(|| panic!("secret internal detail")),
        );
        assert_eq!(status, 500);
        assert!(body.contains("\"kind\":\"panic\""), "{body}");
        assert!(
            !body.contains("secret internal detail"),
            "panic text must never cross the wire: {body}"
        );
        // Same worker still serves the next request.
        let (status, body) = pool.run(
            Duration::from_secs(5),
            5000,
            Box::new(|| (200, "ok".into())),
        );
        assert_eq!((status, body.as_str()), (200, "ok"));
        assert_eq!(pool.stats.panics.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn a_full_queue_rejects_with_429() {
        let pool = Pool::new(1, 1);
        // Occupy the single worker and fill the single queue slot.
        let (gate_tx, gate_rx) = sync_channel::<()>(0);
        let slow = pool
            .submit(Box::new(move || {
                let _ = gate_rx.recv();
                (200, "slow".into())
            }))
            .unwrap();
        // Wait until the worker has actually dequeued the slow job so
        // the queue slot is free again, then fill it.
        while pool.stats.in_flight.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let _queued = pool.submit(Box::new(|| (200, "queued".into()))).unwrap();
        let overflow = pool.submit(Box::new(|| (200, "never".into())));
        let e = overflow.unwrap_err();
        assert_eq!((e.status, e.kind), (429, "overloaded"));
        assert_eq!(pool.stats.rejected.load(Ordering::SeqCst), 1);
        gate_tx.send(()).unwrap();
        assert_eq!(slow.recv().unwrap().1, "slow");
    }

    #[test]
    fn an_expired_deadline_returns_504_and_the_gauge_drains() {
        let pool = Pool::new(1, 2);
        let (status, body) = pool.run(
            Duration::from_millis(20),
            20,
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(200));
                (200, "late".into())
            }),
        );
        assert_eq!(status, 504);
        assert!(body.contains("\"kind\":\"timeout\""), "{body}");
        assert!(body.contains("\"request\""), "{body}");
        // The worker eventually finishes and the in-flight gauge drains
        // even though the caller is long gone.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats.in_flight.load(Ordering::SeqCst) != 0 {
            assert!(std::time::Instant::now() < deadline, "gauge never drained");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.stats.deadline_expired.load(Ordering::SeqCst), 1);
    }
}
