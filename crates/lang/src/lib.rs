//! # systolic-lang
//!
//! The textual front end of the systolizing compiler: a concrete syntax
//! for the paper's source programs (Sec. 3.1), with a lexer, a recursive
//! descent parser, and lowering to `systolic-ir` with line-numbered
//! diagnostics for restriction violations.

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError};
pub use parser::{parse, ParseError};
