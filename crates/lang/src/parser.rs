//! Parser and lowering: source text to the `systolic-ir` program.
//!
//! The surface syntax makes the paper's Sec. 3.1 notation concrete:
//!
//! ```text
//! program polyprod;
//! size n;
//! var a[0..n], b[0..n], c[0..2*n];
//! for i = 0 <- 1 -> n
//! for j = 0 <- 1 -> n {
//!   c[i+j] = c[i+j] + a[i] * b[j];
//! }
//! ```
//!
//! Guarded updates are written `if <cond> -> lhs = rhs;`. Loop steps are
//! `1` or `-1` between `<-` and `->`. Stream index expressions must be
//! linear in the loop indices with no constant part (restriction A.2);
//! violations are diagnosed with line numbers.

use crate::lexer::{lex, Spanned, Tok};
use std::collections::HashMap;
use std::fmt;
use systolic_ir::expr::{BasicStatement, BoolExpr, CmpOp, GuardedUpdate, ScalarExpr, StreamId};
use systolic_ir::{IndexedVar, Loop, SourceProgram, Stream};
use systolic_math::{Affine, Matrix, Rational, VarTable};

/// A parse/lowering error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A linear combination of identifiers plus a constant, the common shape
/// of bounds and index expressions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct LinComb {
    coeffs: Vec<(String, i64)>,
    constant: i64,
}

impl LinComb {
    fn constant(c: i64) -> LinComb {
        LinComb {
            coeffs: Vec::new(),
            constant: c,
        }
    }

    fn ident(name: &str) -> LinComb {
        LinComb {
            coeffs: vec![(name.to_string(), 1)],
            constant: 0,
        }
    }

    fn add(mut self, other: LinComb, sign: i64) -> LinComb {
        self.constant += sign * other.constant;
        for (n, c) in other.coeffs {
            match self.coeffs.iter_mut().find(|(m, _)| *m == n) {
                Some((_, existing)) => *existing += sign * c,
                None => self.coeffs.push((n, sign * c)),
            }
        }
        self.coeffs.retain(|&(_, c)| c != 0);
        self
    }

    fn scale(mut self, k: i64) -> LinComb {
        self.constant *= k;
        for (_, c) in &mut self.coeffs {
            *c *= k;
        }
        self.coeffs.retain(|&(_, c)| c != 0);
        self
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected an identifier, found {other}")),
        }
    }

    /// Linear expression: terms of idents and integers combined with
    /// `+`, `-`, and `*` by constants.
    fn lin_expr(&mut self) -> Result<LinComb, ParseError> {
        let mut acc = LinComb::default();
        let mut sign = 1i64;
        // Leading sign.
        if *self.peek() == Tok::Minus {
            self.bump();
            sign = -1;
        }
        loop {
            let term = self.lin_term()?;
            acc = acc.add(term, sign);
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    sign = 1;
                }
                Tok::Minus => {
                    self.bump();
                    sign = -1;
                }
                _ => return Ok(acc),
            }
        }
    }

    /// A term: `k`, `x`, `k*x`, `x*k`, or parenthesized linear expr.
    fn lin_term(&mut self) -> Result<LinComb, ParseError> {
        let first = self.lin_atom()?;
        if *self.peek() == Tok::Star {
            self.bump();
            let second = self.lin_atom()?;
            // One side must be constant for linearity.
            if first.coeffs.is_empty() {
                Ok(second.scale(first.constant))
            } else if second.coeffs.is_empty() {
                Ok(first.scale(second.constant))
            } else {
                self.err("non-linear product in a linear expression")
            }
        } else {
            Ok(first)
        }
    }

    fn lin_atom(&mut self) -> Result<LinComb, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(LinComb::constant(n))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(LinComb::ident(&s))
            }
            Tok::LParen => {
                self.bump();
                let e = self.lin_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => self.err(format!("expected a linear term, found {other}")),
        }
    }
}

/// Context for lowering body expressions.
struct Lowering {
    loop_names: Vec<String>,
    /// var name -> declared dimension count
    var_dims: HashMap<String, usize>,
    var_order: Vec<String>,
    /// (var name, index rows) -> stream id, in first-appearance order.
    streams: Vec<(String, Vec<Vec<i64>>)>,
}

impl Lowering {
    fn loop_index(&self, name: &str) -> Option<usize> {
        self.loop_names.iter().position(|n| n == name)
    }

    /// Lower one bracketed index expression list to index-map rows.
    fn index_rows(&self, line: usize, exprs: &[LinComb]) -> Result<Vec<Vec<i64>>, ParseError> {
        let mut rows = Vec::with_capacity(exprs.len());
        for e in exprs {
            if e.constant != 0 {
                return Err(ParseError {
                    line,
                    message: "constants are not allowed in stream index vectors (restriction A.2)"
                        .into(),
                });
            }
            let mut row = vec![0i64; self.loop_names.len()];
            for (name, c) in &e.coeffs {
                match self.loop_index(name) {
                    Some(i) => row[i] = *c,
                    None => {
                        return Err(ParseError {
                            line,
                            message: format!("`{name}` is not a loop index"),
                        })
                    }
                }
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Find or create the stream for a variable access.
    fn stream(
        &mut self,
        line: usize,
        var: &str,
        rows: Vec<Vec<i64>>,
    ) -> Result<StreamId, ParseError> {
        if !self.var_dims.contains_key(var) {
            return Err(ParseError {
                line,
                message: format!("undeclared variable `{var}`"),
            });
        }
        if self.var_dims[var] != rows.len() {
            return Err(ParseError {
                line,
                message: format!(
                    "variable `{var}` is {}-dimensional but indexed with {} expression(s)",
                    self.var_dims[var],
                    rows.len()
                ),
            });
        }
        if let Some(k) = self
            .streams
            .iter()
            .position(|(v, r)| v == var && *r == rows)
        {
            return Ok(StreamId(k));
        }
        // The paper requires one index map per variable (streams with
        // rank < r-1 would be split; multiple maps per variable are out
        // of scope).
        if self.streams.iter().any(|(v, _)| v == var) {
            return Err(ParseError {
                line,
                message: format!(
                    "variable `{var}` is accessed under two different index maps; \
                     each variable must form a single stream"
                ),
            });
        }
        self.streams.push((var.to_string(), rows));
        Ok(StreamId(self.streams.len() - 1))
    }
}

fn parse_scalar(p: &mut Parser, lw: &mut Lowering) -> Result<ScalarExpr, ParseError> {
    parse_add(p, lw)
}

fn parse_add(p: &mut Parser, lw: &mut Lowering) -> Result<ScalarExpr, ParseError> {
    let mut acc = parse_mul(p, lw)?;
    loop {
        match p.peek() {
            Tok::Plus => {
                p.bump();
                let rhs = parse_mul(p, lw)?;
                acc = ScalarExpr::Add(Box::new(acc), Box::new(rhs));
            }
            Tok::Minus => {
                p.bump();
                let rhs = parse_mul(p, lw)?;
                acc = ScalarExpr::Sub(Box::new(acc), Box::new(rhs));
            }
            _ => return Ok(acc),
        }
    }
}

fn parse_mul(p: &mut Parser, lw: &mut Lowering) -> Result<ScalarExpr, ParseError> {
    let mut acc = parse_atom(p, lw)?;
    while *p.peek() == Tok::Star {
        p.bump();
        let rhs = parse_atom(p, lw)?;
        acc = ScalarExpr::Mul(Box::new(acc), Box::new(rhs));
    }
    Ok(acc)
}

fn parse_atom(p: &mut Parser, lw: &mut Lowering) -> Result<ScalarExpr, ParseError> {
    match p.peek().clone() {
        Tok::Int(n) => {
            p.bump();
            Ok(ScalarExpr::Const(n))
        }
        Tok::Minus => {
            p.bump();
            let inner = parse_atom(p, lw)?;
            Ok(ScalarExpr::Neg(Box::new(inner)))
        }
        Tok::LParen => {
            p.bump();
            let e = parse_scalar(p, lw)?;
            p.expect(Tok::RParen)?;
            Ok(e)
        }
        Tok::Min | Tok::Max => {
            let is_min = *p.peek() == Tok::Min;
            p.bump();
            p.expect(Tok::LParen)?;
            let a = parse_scalar(p, lw)?;
            p.expect(Tok::Comma)?;
            let b = parse_scalar(p, lw)?;
            p.expect(Tok::RParen)?;
            Ok(if is_min {
                ScalarExpr::Min(Box::new(a), Box::new(b))
            } else {
                ScalarExpr::Max(Box::new(a), Box::new(b))
            })
        }
        Tok::Ident(name) => {
            let line = p.line();
            p.bump();
            if *p.peek() == Tok::LBracket {
                // A stream access.
                p.bump();
                let mut exprs = vec![p.lin_expr()?];
                while *p.peek() == Tok::Comma {
                    p.bump();
                    exprs.push(p.lin_expr()?);
                }
                p.expect(Tok::RBracket)?;
                let rows = lw.index_rows(line, &exprs)?;
                let sid = lw.stream(line, &name, rows)?;
                Ok(ScalarExpr::Stream(sid))
            } else if let Some(i) = lw.loop_index(&name) {
                Ok(ScalarExpr::Index(i))
            } else {
                Err(ParseError {
                    line,
                    message: format!(
                        "`{name}` is neither a loop index nor an indexed variable access"
                    ),
                })
            }
        }
        other => p.err(format!("expected an expression, found {other}")),
    }
}

fn parse_bool(p: &mut Parser, lw: &mut Lowering) -> Result<BoolExpr, ParseError> {
    parse_or(p, lw)
}

fn parse_or(p: &mut Parser, lw: &mut Lowering) -> Result<BoolExpr, ParseError> {
    let mut acc = parse_and(p, lw)?;
    while *p.peek() == Tok::Or {
        p.bump();
        let rhs = parse_and(p, lw)?;
        acc = BoolExpr::Or(Box::new(acc), Box::new(rhs));
    }
    Ok(acc)
}

fn parse_and(p: &mut Parser, lw: &mut Lowering) -> Result<BoolExpr, ParseError> {
    let mut acc = parse_not(p, lw)?;
    while *p.peek() == Tok::And {
        p.bump();
        let rhs = parse_not(p, lw)?;
        acc = BoolExpr::And(Box::new(acc), Box::new(rhs));
    }
    Ok(acc)
}

fn parse_not(p: &mut Parser, lw: &mut Lowering) -> Result<BoolExpr, ParseError> {
    if *p.peek() == Tok::Not {
        p.bump();
        let inner = parse_not(p, lw)?;
        return Ok(BoolExpr::Not(Box::new(inner)));
    }
    let a = parse_scalar(p, lw)?;
    let op = match p.peek() {
        Tok::EqEq => CmpOp::Eq,
        Tok::Ne => CmpOp::Ne,
        Tok::Le => CmpOp::Le,
        Tok::Lt => CmpOp::Lt,
        Tok::Ge => CmpOp::Ge,
        Tok::Gt => CmpOp::Gt,
        other => return p.err(format!("expected a comparison operator, found {other}")),
    };
    p.bump();
    let b = parse_scalar(p, lw)?;
    Ok(BoolExpr::Cmp(op, a, b))
}

/// Convert a bound `LinComb` (over size symbols only) to an `Affine`.
fn bound_to_affine(
    lc: &LinComb,
    line: usize,
    vars: &mut VarTable,
    declared_sizes: &[String],
) -> Result<Affine, ParseError> {
    let mut e = Affine::int(lc.constant);
    for (name, c) in &lc.coeffs {
        if !declared_sizes.contains(name) {
            return Err(ParseError {
                line,
                message: format!("`{name}` is not a declared problem-size symbol"),
            });
        }
        let v = vars.size(name);
        e = e + Affine::term(v, Rational::int(*c));
    }
    Ok(e)
}

/// Parse a complete source program.
pub fn parse(src: &str) -> Result<SourceProgram, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        line: e.line,
        message: e.message,
    })?;
    let mut p = Parser { toks, pos: 0 };

    // program NAME ;
    p.expect(Tok::Program)?;
    let name = p.ident()?;
    p.expect(Tok::Semi)?;

    // size n, m ;
    p.expect(Tok::Size)?;
    let mut size_names = vec![p.ident()?];
    while *p.peek() == Tok::Comma {
        p.bump();
        size_names.push(p.ident()?);
    }
    p.expect(Tok::Semi)?;

    let mut vars = VarTable::new();
    let sizes: Vec<_> = size_names.iter().map(|n| vars.size(n)).collect();

    // var a[lo..hi, ...], ... ;
    p.expect(Tok::Var)?;
    let mut variables: Vec<IndexedVar> = Vec::new();
    loop {
        let line = p.line();
        let vname = p.ident()?;
        p.expect(Tok::LBracket)?;
        let mut bounds = Vec::new();
        loop {
            let lo = p.lin_expr()?;
            p.expect(Tok::DotDot)?;
            let hi = p.lin_expr()?;
            bounds.push((
                bound_to_affine(&lo, line, &mut vars, &size_names)?,
                bound_to_affine(&hi, line, &mut vars, &size_names)?,
            ));
            if *p.peek() == Tok::Comma {
                p.bump();
            } else {
                break;
            }
        }
        p.expect(Tok::RBracket)?;
        if variables.iter().any(|v| v.name == vname) {
            return Err(ParseError {
                line,
                message: format!("duplicate variable `{vname}`"),
            });
        }
        variables.push(IndexedVar {
            name: vname,
            bounds,
        });
        if *p.peek() == Tok::Comma {
            p.bump();
        } else {
            break;
        }
    }
    p.expect(Tok::Semi)?;

    // Loops.
    let mut loops: Vec<Loop> = Vec::new();
    while *p.peek() == Tok::For {
        let line = p.line();
        p.bump();
        let index_name = p.ident()?;
        p.expect(Tok::Assign)?;
        let lb = p.lin_expr()?;
        p.expect(Tok::BackArrow)?;
        // Step: 1 or -1.
        let step = match p.bump() {
            Tok::Int(1) => 1,
            Tok::Minus => match p.bump() {
                Tok::Int(1) => -1,
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("loop step must be 1 or -1, found -{other}"),
                    })
                }
            },
            other => {
                return Err(ParseError {
                    line,
                    message: format!("loop step must be 1 or -1, found {other}"),
                })
            }
        };
        p.expect(Tok::Arrow)?;
        let rb = p.lin_expr()?;
        loops.push(Loop {
            index_name,
            lb: bound_to_affine(&lb, line, &mut vars, &size_names)?,
            rb: bound_to_affine(&rb, line, &mut vars, &size_names)?,
            step,
        });
    }
    if loops.is_empty() {
        return p.err("expected at least one `for` loop");
    }

    // Body.
    let mut lw = Lowering {
        loop_names: loops.iter().map(|l| l.index_name.clone()).collect(),
        var_dims: variables
            .iter()
            .map(|v| (v.name.clone(), v.bounds.len()))
            .collect(),
        var_order: variables.iter().map(|v| v.name.clone()).collect(),
        streams: Vec::new(),
    };
    p.expect(Tok::LBrace)?;
    let mut updates = Vec::new();
    while *p.peek() != Tok::RBrace {
        let guard = if *p.peek() == Tok::If {
            p.bump();
            let g = parse_bool(&mut p, &mut lw)?;
            p.expect(Tok::Arrow)?;
            Some(g)
        } else {
            None
        };
        // lhs: var[indices] = expr ;
        let line = p.line();
        let lhs_name = p.ident()?;
        p.expect(Tok::LBracket)?;
        let mut exprs = vec![p.lin_expr()?];
        while *p.peek() == Tok::Comma {
            p.bump();
            exprs.push(p.lin_expr()?);
        }
        p.expect(Tok::RBracket)?;
        let rows = lw.index_rows(line, &exprs)?;
        let target = lw.stream(line, &lhs_name, rows)?;
        p.expect(Tok::Assign)?;
        let value = parse_scalar(&mut p, &mut lw)?;
        p.expect(Tok::Semi)?;
        updates.push(GuardedUpdate {
            guard,
            target,
            value,
        });
    }
    p.expect(Tok::RBrace)?;
    if *p.peek() != Tok::Eof {
        return p.err(format!("trailing input: {}", p.peek()));
    }

    // Assemble streams in first-appearance order.
    let streams: Vec<Stream> = lw
        .streams
        .iter()
        .map(|(vname, rows)| Stream {
            variable: lw.var_order.iter().position(|v| v == vname).unwrap(),
            index_map: Matrix::from_rows(rows),
        })
        .collect();

    Ok(SourceProgram {
        name,
        vars,
        sizes,
        loops,
        variables,
        streams,
        body: BasicStatement { updates },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_math::Env;

    const POLYPROD: &str = "
        program polyprod;
        size n;
        var a[0..n], b[0..n], c[0..2*n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n {
          c[i+j] = c[i+j] + a[i] * b[j];
        }
    ";

    const MATMUL: &str = "
        program matmul;
        size n;
        var a[0..n, 0..n], b[0..n, 0..n], c[0..n, 0..n];
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n
        for k = 0 <- 1 -> n {
          c[i,j] = c[i,j] + a[i,k] * b[k,j];
        }
    ";

    #[test]
    fn parses_polyprod_equivalent_to_gallery() {
        let p = parse(POLYPROD).unwrap();
        let g = systolic_ir::gallery::polynomial_product();
        assert_eq!(p.r(), 2);
        assert_eq!(p.streams.len(), 3);
        systolic_ir::validate(&p, 4).unwrap();
        // Same results as the gallery program.
        let mut env_p = Env::new();
        env_p.bind(p.sizes[0], 4);
        let mut env_g = Env::new();
        env_g.bind(g.sizes[0], 4);
        let rp = systolic_ir::seq::run_random(&p, &env_p, &["a", "b"], 3);
        let rg = systolic_ir::seq::run_random(&g, &env_g, &["a", "b"], 3);
        assert_eq!(rp.get("c"), rg.get("c"));
    }

    #[test]
    fn parses_matmul_with_correct_index_maps() {
        let p = parse(MATMUL).unwrap();
        assert_eq!(p.r(), 3);
        // Stream order by appearance: c, a, b.
        assert_eq!(p.stream_name(StreamId(0)), "c");
        assert_eq!(p.stream_name(StreamId(1)), "a");
        assert_eq!(
            p.streams[1].index_map,
            Matrix::from_rows(&[vec![1, 0, 0], vec![0, 0, 1]])
        );
        systolic_ir::validate(&p, 4).unwrap();
    }

    #[test]
    fn guarded_update() {
        let src = "
            program g;
            size n;
            var a[0..n], b[0..n], c[0..2*n];
            for i = 0 <- 1 -> n
            for j = 0 <- 1 -> n {
              if i <= j -> c[i+j] = c[i+j] + a[i] * b[j];
            }
        ";
        let p = parse(src).unwrap();
        assert!(p.body.updates[0].guard.is_some());
    }

    #[test]
    fn negative_loop_step() {
        let src = "
            program g;
            size n;
            var a[0..n], b[0..n], c[0..2*n];
            for i = 0 <- 1 -> n
            for j = 0 <- -1 -> n {
              c[i+j] = c[i+j] + a[i] * b[j];
            }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.loops[1].step, -1);
    }

    #[test]
    fn constant_in_index_vector_rejected() {
        let src = "
            program g;
            size n;
            var a[0..n], b[0..n], c[0..2*n];
            for i = 0 <- 1 -> n
            for j = 0 <- 1 -> n {
              c[i+j] = c[i+j] + a[i+1] * b[j];
            }
        ";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("constants are not allowed"), "{err}");
    }

    #[test]
    fn two_index_maps_for_one_variable_rejected() {
        let src = "
            program g;
            size n;
            var a[0..n], b[0..n], c[0..2*n];
            for i = 0 <- 1 -> n
            for j = 0 <- 1 -> n {
              c[i+j] = c[i+j] + a[i] * a[j];
            }
        ";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("two different index maps"), "{err}");
    }

    #[test]
    fn undeclared_variable_rejected() {
        let src = "
            program g;
            size n;
            var a[0..n];
            for i = 0 <- 1 -> n
            for j = 0 <- 1 -> n {
              z[i+j] = a[i];
            }
        ";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("undeclared variable"), "{err}");
    }

    #[test]
    fn fir_with_two_sizes_and_negative_bounds() {
        let src = "
            program fir;
            size n, m;
            var h[0..n], x[-n..m], y[0..m];
            for i = 0 <- 1 -> m
            for j = 0 <- 1 -> n {
              y[i] = y[i] + h[j] * x[i-j];
            }
        ";
        let p = parse(src).unwrap();
        systolic_ir::validate(&p, 4).unwrap();
        assert_eq!(p.sizes.len(), 2);
        let mut env = Env::new();
        env.bind(p.sizes[0], 2).bind(p.sizes[1], 5);
        let _ = systolic_ir::seq::run_random(&p, &env, &["h", "x"], 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("program g;\nsize n\nvar a[0..n];").unwrap_err();
        assert_eq!(err.line, 3, "missing semicolon detected at `var`");
    }
}
