//! Tokenizer for the source-program surface syntax (the paper's Sec. 3.1
//! notation, `for x = lb <- st -> rb`, made concrete).

use std::fmt;

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    // keywords
    Program,
    Size,
    Var,
    For,
    If,
    Min,
    Max,
    And,
    Or,
    Not,
    // punctuation
    Semi,
    Comma,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Assign,    // =
    Arrow,     // ->
    BackArrow, // <-
    DotDot,    // ..
    Plus,
    Minus,
    Star,
    Le,   // <=
    Lt,   // <
    Ge,   // >=
    Gt,   // >
    EqEq, // ==
    Ne,   // !=
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer {n}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line (1-based), for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Tokenize the input. `#` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            ';' => {
                out.push(Spanned {
                    tok: Tok::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    line,
                });
                i += 1;
            }
            '{' => {
                out.push(Spanned {
                    tok: Tok::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                out.push(Spanned {
                    tok: Tok::RBrace,
                    line,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    tok: Tok::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    tok: Tok::RBracket,
                    line,
                });
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    tok: Tok::Plus,
                    line,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    tok: Tok::Star,
                    line,
                });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::Minus,
                        line,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'-') {
                    out.push(Spanned {
                        tok: Tok::BackArrow,
                        line,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Tok::Le, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Tok::Ge, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Gt, line });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        tok: Tok::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::Assign,
                        line,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned { tok: Tok::Ne, line });
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "stray `!`".into(),
                    });
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&'.') {
                    out.push(Spanned {
                        tok: Tok::DotDot,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "stray `.`".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: i64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("bad integer {text}"),
                })?;
                out.push(Spanned {
                    tok: Tok::Int(n),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let tok = match text.as_str() {
                    "program" => Tok::Program,
                    "size" => Tok::Size,
                    "var" => Tok::Var,
                    "for" => Tok::For,
                    "if" => Tok::If,
                    "min" => Tok::Min,
                    "max" => Tok::Max,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    _ => Tok::Ident(text),
                };
                out.push(Spanned { tok, line });
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_loop_header() {
        let toks = lex("for i = 0 <- 1 -> n").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::For,
                Tok::Ident("i".into()),
                Tok::Assign,
                Tok::Int(0),
                Tok::BackArrow,
                Tok::Int(1),
                Tok::Arrow,
                Tok::Ident("n".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_ranges_and_comments() {
        let toks = lex("a[0..2*n] # tail comment\n;").unwrap();
        assert!(toks.iter().any(|s| s.tok == Tok::DotDot));
        assert!(toks.iter().any(|s| s.tok == Tok::Semi));
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn comparison_tokens() {
        let toks = lex("<= < >= > == !=").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Le,
                Tok::Lt,
                Tok::Ge,
                Tok::Gt,
                Tok::EqEq,
                Tok::Ne,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn bad_character_is_reported_with_line() {
        let err = lex("ok\n$").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
