//! # systolic-core
//!
//! The systolizing compilation scheme of Barnett & Lengauer (1991) — the
//! paper's primary contribution. Given a source program (`systolic-ir`)
//! and a systolic array (`systolic-synthesis`), [`compile`] derives the
//! complete symbolic plan of the distributed systolic program:
//!
//! - [`basis`] — the process space basis (Secs. 6.1 / 7.1);
//! - [`firstlast`] — `increment` and the guarded repeaters
//!   (Secs. 6.2 / 7.2, including the simple-place special case);
//! - [`iocomm`] — i/o process layout and communications
//!   (Secs. 6.3–6.4 / 7.3–7.4, eqs. 5–7, 10);
//! - [`propagation`] — soak / drain / load / recover (Secs. 6.5 / 7.5,
//!   eqs. 8–9);
//! - [`plan`] — the assembled [`SystolicProgram`];
//! - [`theorems`] — the theorems of Appendix B as executable checks.

pub mod basis;
pub mod compile;
pub mod error;
pub mod firstlast;
pub mod iocomm;
pub mod plan;
pub mod propagation;
pub mod report;
pub mod theorems;

pub use compile::{compile, Options};
pub use error::CompileError;
pub use plan::{IoDim, StreamKind, StreamPlan, SystolicProgram};
