//! The process space basis (Secs. 6.1 and 7.1).
//!
//! Each coordinate of `PS_min` is the minimum over the index space of the
//! corresponding component of `place`. Because the index space is a
//! rectangular (convex) box, the extremum of a linear functional is
//! attained at a vertex determined componentwise by the signs of the
//! functional's coefficients: a positive coefficient pulls the minimum to
//! the loop's left bound, a negative one to the right bound (Sec. 7.1).

use systolic_ir::SourceProgram;
use systolic_math::{affine::AffinePoint, Affine};
use systolic_synthesis::SystolicArray;

/// Compute `(PS_min, PS_max)` symbolically in the problem sizes.
pub fn process_space_basis(
    program: &SourceProgram,
    array: &SystolicArray,
) -> (AffinePoint, AffinePoint) {
    let r = program.r();
    let dims = r - 1;
    let mut ps_min = Vec::with_capacity(dims);
    let mut ps_max = Vec::with_capacity(dims);
    for row in 0..dims {
        let mut lo = Affine::zero();
        let mut hi = Affine::zero();
        for j in 0..r {
            let c = array.place.at(row, j);
            if c.is_zero() {
                continue;
            }
            let lb = program.loops[j].lb.clone().scale(c);
            let rb = program.loops[j].rb.clone().scale(c);
            if c.signum() > 0 {
                lo = lo + lb;
                hi = hi + rb;
            } else {
                lo = lo + rb;
                hi = hi + lb;
            }
        }
        ps_min.push(lo);
        ps_max.push(hi);
    }
    (ps_min, ps_max)
}

/// Sec. 7.1's optimization note: if, for each argument of `place`, the
/// signs of its non-zero coefficients across all components agree, a
/// single vertex realizes every coordinate of `PS_min` simultaneously (two
/// point evaluations instead of `2(r-1)`).
pub fn single_vertex_suffices(array: &SystolicArray) -> bool {
    let (rows, cols) = (array.place.rows(), array.place.cols());
    (0..cols).all(|j| {
        let signs: Vec<i64> = (0..rows)
            .map(|i| array.place.at(i, j).signum())
            .filter(|&s| s != 0)
            .collect();
        signs.windows(2).all(|w| w[0] == w[1])
    })
}

/// Is the place function *simple* (Sec. 7.2.3): a projection along a
/// single axis, i.e. all but one component of the projection direction
/// zero?
pub fn is_simple_place(increment: &[i64]) -> bool {
    increment.iter().filter(|&&c| c != 0).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_math::{affine::display_point, Env};
    use systolic_synthesis::placement::paper;

    #[test]
    fn basis_d1() {
        // Appendix D.1: PS_min = 0, PS_max = n.
        let (p, a) = paper::polyprod_d1();
        let (lo, hi) = process_space_basis(&p, &a);
        assert_eq!(display_point(&lo, &p.vars), "0");
        assert_eq!(display_point(&hi, &p.vars), "n");
    }

    #[test]
    fn basis_d2() {
        // Appendix D.2: PS_min = 0, PS_max = 2n.
        let (p, a) = paper::polyprod_d2();
        let (lo, hi) = process_space_basis(&p, &a);
        assert_eq!(display_point(&lo, &p.vars), "0");
        assert_eq!(display_point(&hi, &p.vars), "2*n");
    }

    #[test]
    fn basis_e1() {
        // Appendix E.1: PS_min = (0,0), PS_max = (n,n).
        let (p, a) = paper::matmul_e1();
        let (lo, hi) = process_space_basis(&p, &a);
        assert_eq!(display_point(&lo, &p.vars), "(0, 0)");
        assert_eq!(display_point(&hi, &p.vars), "(n, n)");
    }

    #[test]
    fn basis_e2() {
        // Appendix E.2: PS_min = (-n,-n), PS_max = (n,n).
        let (p, a) = paper::matmul_e2();
        let (lo, hi) = process_space_basis(&p, &a);
        assert_eq!(display_point(&lo, &p.vars), "(-n, -n)");
        assert_eq!(display_point(&hi, &p.vars), "(n, n)");
    }

    #[test]
    fn basis_is_a_bounding_box() {
        // At a concrete size, every place image lies within the box and
        // each face is attained.
        for (label, p, a) in paper::all() {
            let mut env = Env::new();
            env.bind(p.sizes[0], 3);
            let (lo, hi) = process_space_basis(&p, &a);
            let lo: Vec<i64> = lo.iter().map(|e| e.eval_int(&env)).collect();
            let hi: Vec<i64> = hi.iter().map(|e| e.eval_int(&env)).collect();
            let mut seen_lo = vec![false; lo.len()];
            let mut seen_hi = vec![false; hi.len()];
            for x in p.index_space_seq(&env) {
                let y = a.place_at(&x);
                for d in 0..y.len() {
                    assert!(y[d] >= lo[d] && y[d] <= hi[d], "{label}: {y:?} outside");
                    seen_lo[d] |= y[d] == lo[d];
                    seen_hi[d] |= y[d] == hi[d];
                }
            }
            assert!(seen_lo.iter().all(|&b| b), "{label}: min not attained");
            assert!(seen_hi.iter().all(|&b| b), "{label}: max not attained");
        }
    }

    #[test]
    fn vertex_agreement() {
        let (_, a1) = paper::matmul_e1();
        assert!(single_vertex_suffices(&a1));
        let (_, a2) = paper::matmul_e2();
        assert!(
            single_vertex_suffices(&a2),
            "E.2: signs of k agree (both negative)"
        );
        // A place with disagreeing signs per argument.
        let mixed = systolic_synthesis::SystolicArray::new(
            vec![1, 1, 1],
            systolic_math::Matrix::from_rows(&[vec![1, 0, -1], vec![-1, 1, 0]]),
        );
        assert!(!single_vertex_suffices(&mixed));
    }

    #[test]
    fn simplicity() {
        assert!(is_simple_place(&[0, 1]));
        assert!(is_simple_place(&[0, 0, -1]));
        assert!(!is_simple_place(&[1, -1]));
        assert!(!is_simple_place(&[1, 1, 1]));
    }
}
