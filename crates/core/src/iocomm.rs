//! The I/O processes: layout (Secs. 6.3 / 7.3) and communications
//! (Secs. 6.4 / 7.4).

use crate::error::CompileError;
use crate::plan::IoDim;
use systolic_ir::{SourceProgram, StreamId};
use systolic_math::{
    affine::{matrix_apply, point_add, point_sub, AffinePoint},
    point, Affine, Chain, Guard, Piecewise, RatPoint, Rational,
};

/// `increment_s = M . increment` (Theorem 11) for a moving stream. The
/// caller substitutes the loading & recovery vector for stationary ones.
pub fn stream_increment(program: &SourceProgram, s: StreamId, increment: &[i64]) -> Vec<i64> {
    program.stream(s).index_map.apply_int(increment)
}

/// The i/o process layout for one stream (Sec. 7.3): one [`IoDim`] per
/// non-zero component of the stream's (i/o) flow, in increasing dimension
/// order, each later dimension omitting the boundary points already
/// claimed by earlier ones.
pub fn io_layout(io_flow: &[Rational]) -> Vec<IoDim> {
    let mut dims = Vec::new();
    let mut claimed = Vec::new();
    for (d, f) in io_flow.iter().enumerate() {
        if f.is_zero() {
            continue;
        }
        dims.push(IoDim {
            dim: d,
            input_at_min: f.signum() > 0,
            exclude_dims: claimed.clone(),
        });
        claimed.push(d);
    }
    dims
}

/// Solve `place . delta = v` (unique modulo `null.place`; pinned by
/// requiring `increment . delta = 0`) and return `M . delta` — the
/// variable-space element increment induced by loading a stationary
/// stream along process-space direction `v` (the loading & recovery
/// vector "plays the role of increment_s", Sec. 7.4; the two vectors
/// coincide in the paper's examples because their index maps align
/// process and variable space, but differ in general). `None` when the
/// result is not an integer vector (an unusable loading vector).
pub fn loading_increment(
    program: &SourceProgram,
    array: &systolic_synthesis::SystolicArray,
    increment: &[i64],
    s: StreamId,
    v: &[i64],
) -> Option<Vec<i64>> {
    let r = array.r();
    // Stack place over the increment row: square and invertible (the
    // two null spaces intersect trivially).
    let mut rows: Vec<Vec<Rational>> = (0..r - 1).map(|i| array.place.row(i).to_vec()).collect();
    rows.push(increment.iter().map(|&c| Rational::int(c)).collect());
    let stacked = systolic_math::Matrix::from_rat_rows(&rows);
    let mut rhs: Vec<Affine> = v.iter().map(|&c| Affine::int(c)).collect();
    rhs.push(Affine::zero());
    let delta = systolic_math::linsolve::solve(&stacked, &rhs)?;
    let delta: Option<Vec<Rational>> = delta.iter().map(|e| e.as_const()).collect();
    let m = &program.stream(s).index_map;
    m.apply_rat(&delta?)
        .iter()
        .map(|q| q.to_integer())
        .collect()
}

/// Which end of `first`/`last` to derive for the stream pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipeEnd {
    FirstS,
    LastS,
}

/// Derive `first_s` or `last_s` (eqs. 6 / 7): the intersection of the
/// element line with the boundary of the variable space.
///
/// `x` is "an arbitrary basic statement expressed in the coordinates of
/// CS, e.g. from any of the alternatives for first or last" — the result
/// is independent of the choice because every such formula lands on the
/// same element line (the paper invites the reader to verify this; our
/// tests do). One alternative is produced per face of `VS.v` with a
/// non-zero `increment_s` component, guarded by substituting the derived
/// components into the variable-space bounds (Sec. 7.4).
pub fn derive_pipe_end(
    program: &SourceProgram,
    s: StreamId,
    x: &AffinePoint,
    increment_s: &[i64],
    which: PipeEnd,
) -> Result<Piecewise<AffinePoint>, CompileError> {
    let m = &program.stream(s).index_map;
    let mx = matrix_apply(m, x);
    let vs = program.stream_var_bounds(s);
    let dims = increment_s.len();
    assert_eq!(vs.len(), dims);

    let mut clauses = Vec::new();
    for face in 0..dims {
        if increment_s[face] == 0 {
            continue;
        }
        // The known component on this face: lower bound if walking
        // backwards along a positive increment_s (first_s), etc.
        let take_lb = (increment_s[face] > 0) == (which == PipeEnd::FirstS);
        let bound = if take_lb {
            vs[face].0.clone()
        } else {
            vs[face].1.clone()
        };
        // Eq. 6: M.x - ((M.x.face - bound) / increment_s.face) * increment_s
        // Eq. 7: M.x + ((bound - M.x.face) / increment_s.face) * increment_s
        // Both reduce to the same walk; write it once.
        let offset = (mx[face].clone() - &bound).scale(Rational::new(1, increment_s[face]));
        let step: AffinePoint = increment_s
            .iter()
            .map(|&c| offset.clone().scale(Rational::int(c)))
            .collect();
        let result = point_sub(&mx, &step);

        // Integrality of the symbolic coefficients (paper future work
        // otherwise).
        for e in &result {
            let ok = e.constant_part().is_integer() && e.vars().all(|v| e.coeff(v).is_integer());
            if !ok {
                return Err(CompileError::NonIntegerSolution {
                    face,
                    detail: format!("pipe end of stream {} not integral", s.0),
                });
            }
        }

        // Guard: derived components within the variable-space bounds.
        let mut guard = Guard::always();
        for (j, bnds) in vs.iter().enumerate() {
            if j == face {
                continue; // pinned to the bound by construction
            }
            guard = guard.and_chain(Chain::between(
                bnds.0.clone(),
                result[j].clone(),
                bnds.1.clone(),
            ));
        }
        if let Some(g) = guard.simplify() {
            clauses.push((g, result));
        }
    }
    Ok(Piecewise::new(clauses))
}

/// Eq. 10: the total number of elements in a pipe,
/// `((last_s - first_s) // increment_s) + 1`, piecewise.
pub fn derive_pass_total(
    s: StreamId,
    first_s: &Piecewise<AffinePoint>,
    last_s: &Piecewise<AffinePoint>,
    increment_s: &[i64],
) -> Result<Piecewise<Affine>, CompileError> {
    let mut failed = false;
    let total = first_s.cross(last_s, |f, l| match systolic_math::affine::point_exact_div(
        &point_sub(l, f),
        increment_s,
    ) {
        Some(q) => q + Affine::int(1),
        None => {
            failed = true;
            Affine::zero()
        }
    });
    if failed {
        return Err(CompileError::DivisionFailed {
            what: "pass_total",
            stream: Some(s.0),
        });
    }
    Ok(total)
}

/// The i/o flow of a stream: its `flow` when moving; the loading &
/// recovery vector (as rationals) when stationary.
pub fn io_flow(flow: &RatPoint, loading: Option<&[i64]>) -> RatPoint {
    match loading {
        Some(v) => point::to_rational(v),
        None => flow.clone(),
    }
}

/// Verify a point expression `point_add` helper is exercised (kept for
/// symmetric eq. 7 phrasing in tests).
pub fn walk_forward(mx: &AffinePoint, offset: &Affine, increment_s: &[i64]) -> AffinePoint {
    let step: AffinePoint = increment_s
        .iter()
        .map(|&c| offset.clone().scale(Rational::int(c)))
        .collect();
    point_add(mx, &step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firstlast::{derive_endpoint, derive_increment, Endpoint};
    use systolic_math::affine::display_point;
    use systolic_math::{Env, Var, VarTable};
    use systolic_synthesis::placement::paper;
    use systolic_synthesis::SystolicArray;

    type Ctx = (
        SourceProgram,
        SystolicArray,
        VarTable,
        Vec<Var>,
        Vec<i64>,
        Piecewise<AffinePoint>,
        Piecewise<AffinePoint>,
    );

    fn ctx(pair: (SourceProgram, SystolicArray)) -> Ctx {
        let (p, a) = pair;
        let mut vars = p.vars.clone();
        let coords: Vec<Var> = (0..p.r() - 1).map(|d| vars.coord(d)).collect();
        let inc = derive_increment(&a).unwrap();
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        (p, a, vars, coords, inc, first, last)
    }

    #[test]
    fn stream_increments_match_paper() {
        // D.1 (increment (0,1)): inc_a = 0, inc_b = 1, inc_c = 1.
        let (p, _, _, _, inc, _, _) = ctx(paper::polyprod_d1());
        assert_eq!(stream_increment(&p, StreamId(0), &inc), vec![0]);
        assert_eq!(stream_increment(&p, StreamId(1), &inc), vec![1]);
        assert_eq!(stream_increment(&p, StreamId(2), &inc), vec![1]);
        // D.2 (increment (1,-1)): 1, -1, 0.
        let (p, _, _, _, inc, _, _) = ctx(paper::polyprod_d2());
        assert_eq!(stream_increment(&p, StreamId(0), &inc), vec![1]);
        assert_eq!(stream_increment(&p, StreamId(1), &inc), vec![-1]);
        assert_eq!(stream_increment(&p, StreamId(2), &inc), vec![0]);
        // E.1 (increment (0,0,1)): (0,1), (1,0), (0,0).
        let (p, _, _, _, inc, _, _) = ctx(paper::matmul_e1());
        assert_eq!(stream_increment(&p, StreamId(0), &inc), vec![0, 1]);
        assert_eq!(stream_increment(&p, StreamId(1), &inc), vec![1, 0]);
        assert_eq!(stream_increment(&p, StreamId(2), &inc), vec![0, 0]);
        // E.2 (increment (1,1,1)): all (1,1).
        let (p, _, _, _, inc, _, _) = ctx(paper::matmul_e2());
        for k in 0..3 {
            assert_eq!(stream_increment(&p, StreamId(k), &inc), vec![1, 1]);
        }
    }

    #[test]
    fn e1_pipe_ends_match_the_summary_table() {
        // Appendix E.1.4's table: first_a = (col,0), last_a = (col,n),
        // first_b = (0,row), last_b = (n,row), first_c = (0,row),
        // last_c = (n,row) (with increment_c = loading vector (1,0)).
        let (p, _, vars, _, inc, first, _) = ctx(paper::matmul_e1());
        let x = &first.clauses()[0].1;

        let inc_a = stream_increment(&p, StreamId(0), &inc);
        let fa = derive_pipe_end(&p, StreamId(0), x, &inc_a, PipeEnd::FirstS).unwrap();
        let la = derive_pipe_end(&p, StreamId(0), x, &inc_a, PipeEnd::LastS).unwrap();
        assert_eq!(display_point(&fa.clauses()[0].1, &vars), "(col, 0)");
        assert_eq!(display_point(&la.clauses()[0].1, &vars), "(col, n)");

        let inc_b = stream_increment(&p, StreamId(1), &inc);
        let fb = derive_pipe_end(&p, StreamId(1), x, &inc_b, PipeEnd::FirstS).unwrap();
        let lb = derive_pipe_end(&p, StreamId(1), x, &inc_b, PipeEnd::LastS).unwrap();
        assert_eq!(display_point(&fb.clauses()[0].1, &vars), "(0, row)");
        assert_eq!(display_point(&lb.clauses()[0].1, &vars), "(n, row)");

        // Stationary c with loading vector (1,0).
        let fc = derive_pipe_end(&p, StreamId(2), x, &[1, 0], PipeEnd::FirstS).unwrap();
        let lc = derive_pipe_end(&p, StreamId(2), x, &[1, 0], PipeEnd::LastS).unwrap();
        assert_eq!(display_point(&fc.clauses()[0].1, &vars), "(0, row)");
        assert_eq!(display_point(&lc.clauses()[0].1, &vars), "(n, row)");
    }

    #[test]
    fn e2_pipe_ends_have_two_guarded_cases() {
        // Appendix E.2.4: first_a = if 0<=-col<=n -> (0,-col)
        //                           [] 0<=col<=n  -> (col,0) fi.
        let (p, _, vars, _, inc, first, _) = ctx(paper::matmul_e2());
        // Use the *second* clause as the paper does; any works.
        let x = &first.clauses()[1].1;
        let inc_a = stream_increment(&p, StreamId(0), &inc);
        let fa = derive_pipe_end(&p, StreamId(0), x, &inc_a, PipeEnd::FirstS).unwrap();
        let shown: Vec<(String, String)> = fa
            .clauses()
            .iter()
            .map(|(g, pt)| (g.display(&vars), display_point(pt, &vars)))
            .collect();
        assert_eq!(shown[0].1, "(0, -col)");
        assert_eq!(shown[0].0, "0 <= -col <= n");
        assert_eq!(shown[1].1, "(col, 0)");
        assert_eq!(shown[1].0, "0 <= col <= n");

        // last_a via the first clause of first (paper's x choice):
        // if 0<=n-col<=n -> (n, n-col)... paper E.2.4 lists
        // last_a = if 0<=n+col<=n -> (n+col, n) [] 0<=n-col<=n -> (n,n-col)
        // (order by face). Face 0 gives (n, n-col); face 1 gives (n+col, n).
        let x0 = &first.clauses()[0].1;
        let la = derive_pipe_end(&p, StreamId(0), x0, &inc_a, PipeEnd::LastS).unwrap();
        let shown: Vec<String> = la
            .clauses()
            .iter()
            .map(|(_, pt)| display_point(pt, &vars))
            .collect();
        assert!(shown.contains(&"(n, n - col)".to_string()), "{shown:?}");
        assert!(shown.contains(&"(n + col, n)".to_string()), "{shown:?}");
    }

    #[test]
    fn pipe_ends_independent_of_statement_choice() {
        // "The reader may verify that the same answers are obtained if
        // last is used for x; actually any basic statement could be used."
        let (p, _, _, coords, inc, first, last) = ctx(paper::matmul_e2());
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        for s in p.stream_ids() {
            let inc_s = stream_increment(&p, s, &inc);
            let choices: Vec<&AffinePoint> = first
                .clauses()
                .iter()
                .map(|(_, pt)| pt)
                .chain(last.clauses().iter().map(|(_, pt)| pt))
                .collect();
            let reference = derive_pipe_end(&p, s, choices[0], &inc_s, PipeEnd::FirstS).unwrap();
            for x in &choices[1..] {
                let alt = derive_pipe_end(&p, s, x, &inc_s, PipeEnd::FirstS).unwrap();
                // Compare as evaluated functions over a grid of coords.
                for col in -3..=3 {
                    for row in -3..=3 {
                        let mut e = env.clone();
                        e.bind(coords[0], col).bind(coords[1], row);
                        let a = reference
                            .select(&e)
                            .map(|pt| systolic_math::affine::eval_point(pt, &e));
                        let b = alt
                            .select(&e)
                            .map(|pt| systolic_math::affine::eval_point(pt, &e));
                        assert_eq!(a, b, "stream {} at ({col},{row})", s.0);
                    }
                }
            }
        }
    }

    #[test]
    fn layout_dims_and_dedup() {
        // E.1: flow.a = (0,1) -> io on dim 1 only.
        let dims = io_layout(&[Rational::ZERO, Rational::ONE]);
        assert_eq!(
            dims,
            vec![IoDim {
                dim: 1,
                input_at_min: true,
                exclude_dims: vec![]
            }]
        );
        // E.2: flow.c = (-1,-1) -> dims 0 and 1, dim 1 excludes dim 0's
        // points; inputs at the max sides.
        let dims = io_layout(&[Rational::int(-1), Rational::int(-1)]);
        assert_eq!(
            dims,
            vec![
                IoDim {
                    dim: 0,
                    input_at_min: false,
                    exclude_dims: vec![]
                },
                IoDim {
                    dim: 1,
                    input_at_min: false,
                    exclude_dims: vec![0]
                },
            ]
        );
    }

    #[test]
    fn d1_io_repeaters() {
        // D.1.4: repeaters {0 n 1} for b and {0 2n 1} for c.
        let (p, _, vars, _, inc, first, _) = ctx(paper::polyprod_d1());
        let x = &first.clauses()[0].1;
        for (sid, expect_first, expect_last) in [(1usize, "0", "n"), (2, "0", "2*n")] {
            let inc_s = stream_increment(&p, StreamId(sid), &inc);
            let f = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::FirstS).unwrap();
            let l = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::LastS).unwrap();
            assert_eq!(display_point(&f.clauses()[0].1, &vars), expect_first);
            assert_eq!(display_point(&l.clauses()[0].1, &vars), expect_last);
        }
        // Stationary a with loading vector 1: {0 n 1}.
        let f = derive_pipe_end(&p, StreamId(0), x, &[1], PipeEnd::FirstS).unwrap();
        let l = derive_pipe_end(&p, StreamId(0), x, &[1], PipeEnd::LastS).unwrap();
        assert_eq!(display_point(&f.clauses()[0].1, &vars), "0");
        assert_eq!(display_point(&l.clauses()[0].1, &vars), "n");
    }

    #[test]
    fn d2_reversed_repeater_for_b() {
        // D.2.4: increment_b = -1 so the repeater is {n 0 -1}.
        let (p, _, vars, _, inc, first, _) = ctx(paper::polyprod_d2());
        let x = &first.clauses()[0].1;
        let inc_b = stream_increment(&p, StreamId(1), &inc);
        assert_eq!(inc_b, vec![-1]);
        let f = derive_pipe_end(&p, StreamId(1), x, &inc_b, PipeEnd::FirstS).unwrap();
        let l = derive_pipe_end(&p, StreamId(1), x, &inc_b, PipeEnd::LastS).unwrap();
        assert_eq!(display_point(&f.clauses()[0].1, &vars), "n");
        assert_eq!(display_point(&l.clauses()[0].1, &vars), "0");
    }

    #[test]
    fn non_unit_stream_increment_is_rejected() {
        // A hand-built increment_s with a magnitude-2 component makes the
        // eq. 6 walk land between lattice points in the other dimension:
        // the NonIntegerSolution error path.
        let (p, _, _, _, _, first, _) = ctx(paper::matmul_e1());
        let x = &first.clauses()[0].1;
        let err = derive_pipe_end(&p, StreamId(0), x, &[2, 1], PipeEnd::FirstS).unwrap_err();
        assert!(matches!(
            err,
            crate::error::CompileError::NonIntegerSolution { .. }
        ));
        assert!(err.to_string().contains("non-integer"));
    }

    #[test]
    fn loading_increment_general_case() {
        // place (j, k) for matmul: loading along process dim 0 moves the
        // element identity along VS dim 1 (the finding behind the
        // loading-vector generalization).
        let p = systolic_ir::gallery::matrix_product();
        let arr = SystolicArray::new(
            vec![1, 1, 1],
            systolic_math::Matrix::from_rows(&[vec![0, 1, 0], vec![0, 0, 1]]),
        );
        // b is stationary under this place (null M.b = (1,0,0) = null place).
        let inc = loading_increment(&p, &arr, &[1, 0, 0], StreamId(1), &[1, 0]).unwrap();
        assert_eq!(inc, vec![0, 1], "element increment lives in VS, not PS");
        // For E.1 the two spaces align and the vector passes through.
        let (p, arr) = paper::matmul_e1();
        let inc_e1 = loading_increment(&p, &arr, &[0, 0, 1], StreamId(2), &[1, 0]).unwrap();
        assert_eq!(inc_e1, vec![1, 0]);
    }

    #[test]
    fn pass_totals_e2() {
        // E.2.6: stream a passes n+col+1 or n-col+1 along the buffers.
        let (p, _, vars, _, inc, first, _) = ctx(paper::matmul_e2());
        let x = &first.clauses()[0].1;
        let inc_a = stream_increment(&p, StreamId(0), &inc);
        let f = derive_pipe_end(&p, StreamId(0), x, &inc_a, PipeEnd::FirstS).unwrap();
        let l = derive_pipe_end(&p, StreamId(0), x, &inc_a, PipeEnd::LastS).unwrap();
        let total = derive_pass_total(StreamId(0), &f, &l, &inc_a).unwrap();
        let shown: Vec<String> = total
            .clauses()
            .iter()
            .map(|(_, e)| e.display(&vars))
            .collect();
        assert!(shown.contains(&"n + col + 1".to_string()), "{shown:?}");
        assert!(shown.contains(&"n - col + 1".to_string()), "{shown:?}");
    }
}
