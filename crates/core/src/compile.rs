//! The compilation scheme, end to end (Sec. 7): from a source program and
//! a systolic array to the symbolic [`SystolicProgram`] plan.

use crate::basis::{is_simple_place, process_space_basis};
use crate::error::CompileError;
use crate::firstlast::{derive_count, derive_endpoint, derive_increment, Endpoint};
use crate::iocomm::{
    derive_pass_total, derive_pipe_end, io_flow, io_layout, stream_increment, PipeEnd,
};
use crate::plan::{StreamKind, StreamPlan, SystolicProgram};
use crate::propagation::{derive_drain, derive_soak};
use systolic_ir::{SourceProgram, StreamId};
use systolic_math::affine::AffinePoint;
use systolic_math::{point, Affine, Guard, Piecewise, Var};
use systolic_synthesis::SystolicArray;

/// Drop guard chains that are implied by process-space membership: a
/// chain `lb <= coord <= rb` where `coord` is a bare coordinate variable
/// and `[lb, rb]` is exactly that dimension's `[PS_min, PS_max]` holds for
/// every process, so the paper omits it (e.g. the unguarded `first` of the
/// simple-place designs, and E.1's i/o repeaters).
fn prune_ps_implied(
    g: &Guard,
    coords: &[Var],
    ps_min: &AffinePoint,
    ps_max: &AffinePoint,
) -> Guard {
    let implied = |chain: &systolic_math::Chain| {
        let e = chain.exprs();
        if e.len() != 3 {
            return false;
        }
        let mid = &e[1];
        coords
            .iter()
            .enumerate()
            .any(|(d, &c)| *mid == Affine::var(c) && e[0] == ps_min[d] && e[2] == ps_max[d])
    };
    Guard::new(g.chains().iter().filter(|c| !implied(c)).cloned().collect())
}

fn prune_pw<T: Clone>(
    pw: &Piecewise<T>,
    coords: &[Var],
    ps_min: &AffinePoint,
    ps_max: &AffinePoint,
) -> Piecewise<T> {
    Piecewise::new(
        pw.clauses()
            .iter()
            .map(|(g, v)| (prune_ps_implied(g, coords, ps_min, ps_max), v.clone()))
            .collect(),
    )
}

/// Compilation options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Loading & recovery vectors for stationary streams, by stream id
    /// (Sec. 4.2: "a loading & recovery vector must be supplied as part of
    /// the compilation process"). Missing entries default to the first
    /// axis of the process space, `(1, 0, ...)` — the paper's own choice
    /// in both D.1 and E.1.
    pub loading_vectors: Vec<(StreamId, Vec<i64>)>,
    /// The problem-size sample used when validating the source program's
    /// bound feasibility.
    pub sample_size: i64,
}

impl Options {
    pub fn with_loading_vector(mut self, s: StreamId, v: Vec<i64>) -> Options {
        self.loading_vectors.push((s, v));
        self
    }

    fn loading_vector(&self, s: StreamId, dims: usize) -> Vec<i64> {
        self.loading_vectors
            .iter()
            .find(|(id, _)| *id == s)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| {
                let mut v = vec![0; dims];
                v[0] = 1;
                v
            })
    }
}

/// Run the full scheme. The returned plan contains every derived artifact
/// of Secs. 6–7, symbolic in the problem sizes and process coordinates.
pub fn compile(
    program: &SourceProgram,
    array: &SystolicArray,
    options: &Options,
) -> Result<SystolicProgram, CompileError> {
    // Front-door validation (Appendix A, Sec. 3.2).
    let sample = if options.sample_size > 0 {
        options.sample_size
    } else {
        4
    };
    systolic_ir::validate(program, sample).map_err(CompileError::Source)?;
    array.validate(program).map_err(CompileError::Array)?;

    let r = program.r();
    let dims = r - 1;
    let mut vars = program.vars.clone();
    let coords: Vec<Var> = (0..dims).map(|d| vars.coord(d)).collect();

    // Sec. 7.1: the process space basis.
    let (ps_min, ps_max) = process_space_basis(program, array);

    // Sec. 7.2: increment, first, last, count.
    let increment = derive_increment(array)?;
    let simple_place = is_simple_place(&increment);
    let first = derive_endpoint(program, array, &increment, &coords, Endpoint::First)?;
    let last = derive_endpoint(program, array, &increment, &coords, Endpoint::Last)?;
    let count = derive_count(&first, &last, &increment)?;
    let first = prune_pw(&first, &coords, &ps_min, &ps_max);
    let last = prune_pw(&last, &coords, &ps_min, &ps_max);
    let count = prune_pw(&count, &coords, &ps_min, &ps_max);

    // An arbitrary basic statement in process coordinates (Sec. 7.4 uses
    // one to anchor the element line of each pipe).
    let anchor = first
        .clauses()
        .first()
        .map(|(_, p)| p.clone())
        .expect("first always has at least one face");

    // Secs. 7.3-7.6 per stream.
    let mut streams = Vec::with_capacity(program.streams.len());
    for s in program.stream_ids() {
        let flow = array.flow(program, s);
        let stationary = point::rat_is_zero(&flow);
        let (kind, inc_s) = if stationary {
            let v = options.loading_vector(s, dims);
            if v.len() != dims || point::is_zero(&v) || !point::nb(&v) {
                return Err(CompileError::BadLoadingVector {
                    stream: s.0,
                    vector: v,
                });
            }
            // The loading & recovery vector is a *process-space*
            // direction; the element increment it induces lives in the
            // variable space: increment_s = M . delta where
            // place . delta = v (Sec. 7.4 "plays the role of
            // increment_s" — identical to v in the paper's examples
            // because their index maps align the two spaces, distinct in
            // general).
            let inc_s = crate::iocomm::loading_increment(program, array, &increment, s, &v)
                .ok_or_else(|| CompileError::BadLoadingVector {
                    stream: s.0,
                    vector: v.clone(),
                })?;
            (StreamKind::Stationary { loading_vector: v }, inc_s)
        } else {
            let inc_s = stream_increment(program, s, &increment);
            if point::is_zero(&inc_s) {
                return Err(CompileError::BadStreamIncrement {
                    stream: s.0,
                    increment_s: inc_s,
                });
            }
            (StreamKind::Moving, inc_s)
        };

        let io_fl = match &kind {
            StreamKind::Moving => io_flow(&flow, None),
            StreamKind::Stationary { loading_vector } => io_flow(&flow, Some(loading_vector)),
        };
        let denominator = point::neighbour_multiple(&io_fl).ok_or_else(|| {
            CompileError::Array(systolic_synthesis::ArrayError::FlowNotNeighbouring {
                stream: s.0,
                flow: io_fl.clone(),
            })
        })?;
        let unit_flow: Vec<i64> = io_fl
            .iter()
            .map(|q| {
                (*q * systolic_math::Rational::int(denominator))
                    .to_integer()
                    .unwrap()
            })
            .collect();

        let first_s = derive_pipe_end(program, s, &anchor, &inc_s, PipeEnd::FirstS)?;
        let last_s = derive_pipe_end(program, s, &anchor, &inc_s, PipeEnd::LastS)?;
        let soak = derive_soak(program, s, &first, &first_s, &inc_s)?;
        let drain = derive_drain(program, s, &last, &last_s, &inc_s)?;
        let pass_total = derive_pass_total(s, &first_s, &last_s, &inc_s)?;
        let io_dims = io_layout(&io_fl);
        // Drop guard conjuncts implied by PS membership (paper's
        // presentation-level simplification; also semantically inert).
        let first_s = prune_pw(&first_s, &coords, &ps_min, &ps_max);
        let last_s = prune_pw(&last_s, &coords, &ps_min, &ps_max);
        let soak = prune_pw(&soak, &coords, &ps_min, &ps_max);
        let drain = prune_pw(&drain, &coords, &ps_min, &ps_max);
        let pass_total = prune_pw(&pass_total, &coords, &ps_min, &ps_max);

        streams.push(StreamPlan {
            id: s,
            name: program.stream_name(s).to_string(),
            kind,
            flow,
            io_flow: io_fl,
            denominator,
            unit_flow,
            increment_s: inc_s,
            first_s,
            last_s,
            soak,
            drain,
            pass_total,
            io_dims,
        });
    }

    Ok(SystolicProgram {
        vars,
        coords,
        r,
        ps_min,
        ps_max,
        increment,
        simple_place,
        first,
        last,
        count,
        streams,
        source: program.clone(),
        array: array.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_math::Env;
    use systolic_synthesis::placement::paper;

    fn size_env(plan: &SystolicProgram, n: i64) -> Env {
        let mut env = Env::new();
        for &s in &plan.source.sizes {
            env.bind(s, n);
        }
        env
    }

    #[test]
    fn all_paper_designs_compile() {
        for (label, p, a) in paper::all() {
            compile(&p, &a, &Options::default()).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn d1_stream_classification() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        assert!(
            matches!(plan.streams[0].kind, StreamKind::Stationary { .. }),
            "a"
        );
        assert_eq!(plan.streams[1].kind, StreamKind::Moving, "b");
        assert_eq!(plan.streams[1].denominator, 2, "flow 1/2 needs one buffer");
        assert_eq!(plan.streams[2].denominator, 1);
        assert_eq!(plan.streams[1].unit_flow, vec![1]);
        assert!(plan.simple_place);
    }

    #[test]
    fn e2_stream_plans() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        assert!(!plan.simple_place);
        for sp in &plan.streams {
            assert_eq!(sp.kind, StreamKind::Moving);
            assert_eq!(sp.denominator, 1);
        }
        assert_eq!(plan.streams[2].unit_flow, vec![-1, -1]);
        // c has two io dims (both flow components non-zero), deduped.
        assert_eq!(plan.streams[2].io_dims.len(), 2);
        assert_eq!(plan.streams[2].io_dims[1].exclude_dims, vec![0]);
    }

    #[test]
    fn chord_enumeration_round_trip() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = size_env(&plan, 2);
        // Union of all chords = the index space; chords are disjoint.
        let mut seen = std::collections::HashSet::new();
        for y in plan.ps_points(&env) {
            for x in plan.chord_at(&env, &y) {
                assert_eq!(plan.array.place_at(&x), y, "chord point projects home");
                assert!(seen.insert(x));
            }
        }
        assert_eq!(seen.len(), 27, "3^3 statements at n = 2");
    }

    #[test]
    fn null_processes_exist_only_off_the_diagonal_band() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = size_env(&plan, 2);
        for y in plan.ps_points(&env) {
            let in_cs = plan.in_cs(&env, &y);
            let band = (y[0] - y[1]).abs() <= 2;
            assert_eq!(in_cs, band, "at {y:?}");
        }
    }

    #[test]
    fn loading_vector_override() {
        let (p, a) = paper::matmul_e1();
        let opts = Options::default().with_loading_vector(StreamId(2), vec![0, 1]);
        let plan = compile(&p, &a, &opts).unwrap();
        match &plan.streams[2].kind {
            StreamKind::Stationary { loading_vector } => {
                assert_eq!(loading_vector, &vec![0, 1]);
            }
            _ => panic!("c must be stationary"),
        }
        assert_eq!(plan.streams[2].increment_s, vec![0, 1]);
    }

    #[test]
    fn bad_loading_vector_rejected() {
        let (p, a) = paper::matmul_e1();
        let opts = Options::default().with_loading_vector(StreamId(2), vec![0, 0]);
        assert!(matches!(
            compile(&p, &a, &opts),
            Err(CompileError::BadLoadingVector { stream: 2, .. })
        ));
        let opts = Options::default().with_loading_vector(StreamId(2), vec![2, 0]);
        assert!(matches!(
            compile(&p, &a, &opts),
            Err(CompileError::BadLoadingVector { stream: 2, .. })
        ));
    }

    #[test]
    fn invalid_array_reported() {
        let (p, _) = paper::polyprod_d1();
        let bad = SystolicArray::new(vec![2, 1], systolic_math::Matrix::from_rows(&[vec![1, -1]]));
        assert!(matches!(
            compile(&p, &bad, &Options::default()),
            Err(CompileError::Array(_))
        ));
    }

    #[test]
    fn invalid_source_reported() {
        let (mut p, a) = paper::polyprod_d1();
        p.loops[0].step = 3;
        assert!(matches!(
            compile(&p, &a, &Options::default()),
            Err(CompileError::Source(_))
        ));
    }
}
