//! Compilation failures. The scheme is total on the envelope of Appendix A
//! plus a valid array; anything outside is reported, never mis-compiled.

use std::fmt;
use systolic_ir::Violation;
use systolic_synthesis::ArrayError;

#[derive(Clone, Debug)]
pub enum CompileError {
    /// The source program violates Appendix A.
    Source(Vec<Violation>),
    /// The systolic array is invalid for the program (Sec. 3.2).
    Array(ArrayError),
    /// The derived `increment` leaves `{-1, 0, +1}^r` (restriction A.2;
    /// the "Note" of Sec. 6.2's general case is future work in the paper
    /// and here).
    IncrementNotUnit { increment: Vec<i64> },
    /// A face system's symbolic solution has non-integer coefficients
    /// (listed as future work in Sec. 8: "non-integer solutions to the
    /// linear equations").
    NonIntegerSolution { face: usize, detail: String },
    /// A symbolic exact division (`//`) failed; indicates an inconsistent
    /// array (should be impossible after validation).
    DivisionFailed {
        what: &'static str,
        stream: Option<usize>,
    },
    /// A stationary stream's loading & recovery vector is unusable (zero,
    /// wrong arity, or not neighbour-bounded).
    BadLoadingVector { stream: usize, vector: Vec<i64> },
    /// `increment_s` is zero for a moving stream, or has a component of
    /// magnitude > 1 so element identities would skip lattice points.
    BadStreamIncrement {
        stream: usize,
        increment_s: Vec<i64>,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Source(vs) => {
                writeln!(f, "source program violates Appendix A:")?;
                for v in vs {
                    writeln!(f, "  - {v}")?;
                }
                Ok(())
            }
            CompileError::Array(e) => write!(f, "invalid systolic array: {e:?}"),
            CompileError::IncrementNotUnit { increment } => write!(
                f,
                "derived increment {increment:?} has a component outside {{-1,0,+1}}"
            ),
            CompileError::NonIntegerSolution { face, detail } => {
                write!(f, "face {face}: non-integer symbolic solution ({detail})")
            }
            CompileError::DivisionFailed { what, stream } => match stream {
                Some(s) => write!(f, "exact division failed deriving {what} of stream {s}"),
                None => write!(f, "exact division failed deriving {what}"),
            },
            CompileError::BadLoadingVector { stream, vector } => {
                write!(
                    f,
                    "stream {stream}: unusable loading & recovery vector {vector:?}"
                )
            }
            CompileError::BadStreamIncrement {
                stream,
                increment_s,
            } => {
                write!(f, "stream {stream}: unusable increment_s {increment_s:?}")
            }
        }
    }
}

impl std::error::Error for CompileError {}
