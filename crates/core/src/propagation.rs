//! Data propagation through computation processes (Secs. 6.5 / 7.5):
//! soaking and draining for moving streams; loading and recovery pass
//! counts for stationary ones.

use crate::error::CompileError;
use systolic_ir::{SourceProgram, StreamId};
use systolic_math::{
    affine::{matrix_apply, point_exact_div, point_sub, AffinePoint},
    Affine, Piecewise,
};

/// Eq. 8: `soak_s = (M.first - first_s) // increment_s`, piecewise over
/// the clauses of `first` crossed with those of `first_s` (Appendix E.2.5
/// derives all six combinations; infeasible guard pairs are pruned).
pub fn derive_soak(
    program: &SourceProgram,
    s: StreamId,
    first: &Piecewise<AffinePoint>,
    first_s: &Piecewise<AffinePoint>,
    increment_s: &[i64],
) -> Result<Piecewise<Affine>, CompileError> {
    let m = &program.stream(s).index_map;
    let mut failed = false;
    let soak = first.cross(first_s, |f, fs| {
        let mf = matrix_apply(m, f);
        match point_exact_div(&point_sub(&mf, fs), increment_s) {
            Some(q) => q,
            None => {
                failed = true;
                Affine::zero()
            }
        }
    });
    if failed {
        return Err(CompileError::DivisionFailed {
            what: "soak",
            stream: Some(s.0),
        });
    }
    Ok(soak)
}

/// Eq. 9: `drain_s = (last_s - M.last) // increment_s`.
pub fn derive_drain(
    program: &SourceProgram,
    s: StreamId,
    last: &Piecewise<AffinePoint>,
    last_s: &Piecewise<AffinePoint>,
    increment_s: &[i64],
) -> Result<Piecewise<Affine>, CompileError> {
    let m = &program.stream(s).index_map;
    let mut failed = false;
    let drain = last.cross(last_s, |l, ls| {
        let ml = matrix_apply(m, l);
        match point_exact_div(&point_sub(ls, &ml), increment_s) {
            Some(q) => q,
            None => {
                failed = true;
                Affine::zero()
            }
        }
    });
    if failed {
        return Err(CompileError::DivisionFailed {
            what: "drain",
            stream: Some(s.0),
        });
    }
    Ok(drain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firstlast::{derive_endpoint, derive_increment, Endpoint};
    use crate::iocomm::{derive_pipe_end, stream_increment, PipeEnd};
    use systolic_math::{Env, Var};
    use systolic_synthesis::placement::paper;

    /// Evaluate a piecewise affine at (col [, row]) with n bound.
    fn eval_at(
        pw: &Piecewise<Affine>,
        sizes: &[Var],
        coords: &[Var],
        n: i64,
        y: &[i64],
    ) -> Option<i64> {
        let mut env = Env::new();
        env.bind(sizes[0], n);
        for (&c, &v) in coords.iter().zip(y) {
            env.bind(c, v);
        }
        pw.select(&env).map(|e| e.eval_int(&env))
    }

    #[test]
    fn d1_soak_drain_match_paper() {
        // Appendix D.1.5: soak_b = drain_b = 0; soak_c = col,
        // drain_c = n - col; loading of a = n - col, recovery = col.
        let (p, a) = paper::polyprod_d1();
        let mut vars = p.vars.clone();
        let coords: Vec<Var> = vec![vars.coord(0)];
        let inc = derive_increment(&a).unwrap();
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        let x = &first.clauses()[0].1;

        let check = |sid: usize, inc_s: Vec<i64>, expect_soak: &str, expect_drain: &str| {
            let f_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::FirstS).unwrap();
            let l_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::LastS).unwrap();
            let soak = derive_soak(&p, StreamId(sid), &first, &f_s, &inc_s).unwrap();
            let drain = derive_drain(&p, StreamId(sid), &last, &l_s, &inc_s).unwrap();
            assert_eq!(
                soak.clauses()[0].1.display(&vars),
                expect_soak,
                "soak s{sid}"
            );
            assert_eq!(
                drain.clauses()[0].1.display(&vars),
                expect_drain,
                "drain s{sid}"
            );
        };
        check(1, stream_increment(&p, StreamId(1), &inc), "0", "0");
        check(2, stream_increment(&p, StreamId(2), &inc), "col", "n - col");
        // Stationary a, loading vector 1: recovery (= soak) col,
        // loading (= drain) n - col.
        check(0, vec![1], "col", "n - col");
    }

    #[test]
    fn d2_soak_drain_match_paper() {
        // Appendix D.2.5 (left column = guard 0<=col<=n, right =
        // n<=col<=2n): soak_a = 0 | col-n; soak_b = col | n (paper: col-n
        // wait, soak_b left = col, right = n); drain_a = n-col | 0;
        // drain_b = 0 | col-n.
        let (p, a) = paper::polyprod_d2();
        let mut vars = p.vars.clone();
        let coords: Vec<Var> = vec![vars.coord(0)];
        let inc = derive_increment(&a).unwrap();
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        let x = &first.clauses()[0].1;
        let n = 4i64;

        let eval_stream = |sid: usize, inc_s: Vec<i64>, col: i64| -> (i64, i64) {
            let f_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::FirstS).unwrap();
            let l_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::LastS).unwrap();
            let soak = derive_soak(&p, StreamId(sid), &first, &f_s, &inc_s).unwrap();
            let drain = derive_drain(&p, StreamId(sid), &last, &l_s, &inc_s).unwrap();
            (
                eval_at(&soak, &p.sizes, &coords, n, &[col]).unwrap(),
                eval_at(&drain, &p.sizes, &coords, n, &[col]).unwrap(),
            )
        };
        let inc_a = stream_increment(&p, StreamId(0), &inc);
        let inc_b = stream_increment(&p, StreamId(1), &inc);
        // col in the left region (0..n): soak_a = 0, drain_a = n - col.
        assert_eq!(eval_stream(0, inc_a.clone(), 2), (0, 2));
        // col in the right region: soak_a = col - n, drain_a = 0.
        assert_eq!(eval_stream(0, inc_a, 6), (2, 0));
        // b: left (0, ...) hmm paper: soak_b left = col? D.2.5 left
        // derivation ends in col - n? Re-check numerically instead:
        // total conservation soak + count + drain = n + 1 must hold
        // (b's pipe carries n+1 elements everywhere).
        for col in 0..=2 * n {
            let (s, d) = eval_stream(1, inc_b.clone(), col);
            let count = if col <= n { col + 1 } else { 2 * n - col + 1 };
            assert_eq!(s + d + count, n + 1, "b conservation at col {col}");
        }
        // c stationary, loading vector 1 (D.2.5: loading = 2n - col,
        // recovery = col).
        let (soak_c, drain_c) = eval_stream(2, vec![1], 3);
        assert_eq!(drain_c, 2 * n - 3, "loading passes 2n - col");
        assert_eq!(soak_c, 3, "recovery passes col");
    }

    #[test]
    fn e1_no_soak_or_drain_for_moving_streams() {
        // Appendix E.1.5: M.s.first = first_s for a and b, so no soaking
        // or draining; c loads n - col and recovers col.
        let (p, a) = paper::matmul_e1();
        let mut vars = p.vars.clone();
        let coords: Vec<Var> = vec![vars.coord(0), vars.coord(1)];
        let inc = derive_increment(&a).unwrap();
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        let x = &first.clauses()[0].1;
        for sid in [0usize, 1] {
            let inc_s = stream_increment(&p, StreamId(sid), &inc);
            let f_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::FirstS).unwrap();
            let l_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::LastS).unwrap();
            let soak = derive_soak(&p, StreamId(sid), &first, &f_s, &inc_s).unwrap();
            let drain = derive_drain(&p, StreamId(sid), &last, &l_s, &inc_s).unwrap();
            assert!(soak.clauses()[0].1.is_zero(), "s{sid}");
            assert!(drain.clauses()[0].1.is_zero(), "s{sid}");
        }
        let f_c = derive_pipe_end(&p, StreamId(2), x, &[1, 0], PipeEnd::FirstS).unwrap();
        let l_c = derive_pipe_end(&p, StreamId(2), x, &[1, 0], PipeEnd::LastS).unwrap();
        let soak = derive_soak(&p, StreamId(2), &first, &f_c, &[1, 0]).unwrap();
        let drain = derive_drain(&p, StreamId(2), &last, &l_c, &[1, 0]).unwrap();
        assert_eq!(soak.clauses()[0].1.display(&vars), "col", "recovery");
        assert_eq!(drain.clauses()[0].1.display(&vars), "n - col", "loading");
    }

    #[test]
    fn e2_soak_conservation() {
        // The six-way soak/drain expressions of E.2.5 are hard to compare
        // textually; check the conservation law instead: for every CS
        // process, soak + count + drain = pass_total of its pipe.
        let (p, a) = paper::matmul_e2();
        let mut vars = p.vars.clone();
        let coords: Vec<Var> = vec![vars.coord(0), vars.coord(1)];
        let inc = derive_increment(&a).unwrap();
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        let count = crate::firstlast::derive_count(&first, &last, &inc).unwrap();
        let x = &first.clauses()[0].1;
        let n = 3i64;
        for sid in 0..3usize {
            let inc_s = stream_increment(&p, StreamId(sid), &inc);
            let f_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::FirstS).unwrap();
            let l_s = derive_pipe_end(&p, StreamId(sid), x, &inc_s, PipeEnd::LastS).unwrap();
            let soak = derive_soak(&p, StreamId(sid), &first, &f_s, &inc_s).unwrap();
            let drain = derive_drain(&p, StreamId(sid), &last, &l_s, &inc_s).unwrap();
            let total =
                crate::iocomm::derive_pass_total(StreamId(sid), &f_s, &l_s, &inc_s).unwrap();
            for col in -n..=n {
                for row in -n..=n {
                    let mut env = Env::new();
                    env.bind(p.sizes[0], n);
                    env.bind(coords[0], col).bind(coords[1], row);
                    let Some(cnt) = count.select(&env) else {
                        continue;
                    };
                    let s = soak.select(&env).unwrap().eval_int(&env);
                    let d = drain.select(&env).unwrap().eval_int(&env);
                    let t = total.select(&env).unwrap().eval_int(&env);
                    assert_eq!(
                        s + cnt.eval_int(&env) + d,
                        t,
                        "stream {sid} at ({col},{row})"
                    );
                }
            }
        }
        let _ = vars;
    }
}
