//! The compiled systolic program *plan*: every derived quantity of
//! Secs. 6–7, fully symbolic in the problem-size symbols and process
//! coordinates. The plan is consumed by two back ends: the code generators
//! (`systolic-ast`) render it as a distributed program text; the elaborator
//! (`systolic-interp`) instantiates it at a concrete problem size and
//! executes it on the simulated processor network.

use systolic_ir::{SourceProgram, StreamId};
use systolic_math::{
    affine::{eval_point, AffinePoint},
    speceval::{SpecCount, SpecPoint},
    Affine, Env, Piecewise, RatPoint, Var, VarTable,
};
use systolic_synthesis::SystolicArray;

/// Whether a stream moves through the array or stays put (Sec. 4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamKind {
    Moving,
    /// Stationary, with the user-supplied loading & recovery vector that
    /// "specifies the direction (and the definition) of the input and
    /// output" (Sec. 4.2).
    Stationary {
        loading_vector: Vec<i64>,
    },
}

/// Everything derived for one stream.
#[derive(Clone, Debug)]
pub struct StreamPlan {
    pub id: StreamId,
    /// The indexed variable's name.
    pub name: String,
    pub kind: StreamKind,
    /// `flow.s` (zero vector for stationary streams), length `r-1`.
    pub flow: RatPoint,
    /// The flow used for channel direction: `flow` for moving streams, the
    /// loading & recovery vector for stationary ones.
    pub io_flow: RatPoint,
    /// Smallest `d > 0` with `d * io_flow` integral; `d - 1` internal
    /// buffer processes sit on each incoming edge (Sec. 7.6).
    pub denominator: i64,
    /// `d * io_flow`: the integer neighbour vector the pipe advances by.
    pub unit_flow: Vec<i64>,
    /// `increment_s = M . increment` (Theorem 11), or the loading &
    /// recovery vector for stationary streams. Length `r-1`.
    pub increment_s: Vec<i64>,
    /// First element injected into the pipe (eq. 6), a point of `VS.v`
    /// symbolic in the i/o process coordinates.
    pub first_s: Piecewise<AffinePoint>,
    /// Last element (eq. 7).
    pub last_s: Piecewise<AffinePoint>,
    /// Elements arriving before the first used one (eq. 8). For stationary
    /// streams this is the *recovery* pass count.
    pub soak: Piecewise<Affine>,
    /// Elements arriving after the last used one (eq. 9). For stationary
    /// streams this is the *loading* pass count.
    pub drain: Piecewise<Affine>,
    /// Total pipe length `((last_s - first_s) // increment_s) + 1`
    /// (eq. 10) — what external buffers pass along.
    pub pass_total: Piecewise<Affine>,
    /// The boundary-dimension layout of i/o processes (eq. 5), in
    /// increasing dimension order with duplicates removed.
    pub io_dims: Vec<IoDim>,
}

/// One boundary dimension carrying i/o processes for a stream (eq. 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoDim {
    /// The process-space dimension whose boundaries carry the processes.
    pub dim: usize,
    /// `io_flow.dim > 0`: inputs on the `PS_min` side, outputs on
    /// `PS_max`; reversed otherwise.
    pub input_at_min: bool,
    /// Dimensions with smaller index already claimed their boundary
    /// points; this dimension omits those duplicates (Sec. 7.3).
    pub exclude_dims: Vec<usize>,
}

/// The full compiled plan.
#[derive(Clone, Debug)]
pub struct SystolicProgram {
    /// Symbol table covering problem sizes and process coordinates.
    pub vars: VarTable,
    /// Process-coordinate variables, one per dimension of the process
    /// space (length `r-1`).
    pub coords: Vec<Var>,
    /// The nesting depth of the source program.
    pub r: usize,
    /// Process space basis (Sec. 6.1): the corners of the enclosing box,
    /// symbolic in the problem sizes.
    pub ps_min: AffinePoint,
    pub ps_max: AffinePoint,
    /// The repeater increment (Sec. 7.2.1), components in `{-1, 0, +1}`.
    pub increment: Vec<i64>,
    /// Is the place function *simple* (a single-axis projection,
    /// Sec. 7.2.3)?
    pub simple_place: bool,
    /// `first` / `last` of the computation repeater (Sec. 7.2.2): index
    /// points symbolic in the process coordinates. A process where no
    /// guard holds is a null process.
    pub first: Piecewise<AffinePoint>,
    pub last: Piecewise<AffinePoint>,
    /// `count = ((last - first) // increment) + 1` (eq. 4), piecewise over
    /// the crossed guards.
    pub count: Piecewise<Affine>,
    /// Per-stream plans, indexed by `StreamId`.
    pub streams: Vec<StreamPlan>,
    /// The inputs the plan was compiled from.
    pub source: SourceProgram,
    pub array: SystolicArray,
}

impl SystolicProgram {
    pub fn stream(&self, id: StreamId) -> &StreamPlan {
        &self.streams[id.0]
    }

    /// Bind the process coordinates of `y` into an environment that
    /// already binds the problem sizes.
    pub fn bind_coords(&self, env: &mut Env, y: &[i64]) {
        assert_eq!(y.len(), self.coords.len());
        for (&v, &val) in self.coords.iter().zip(y) {
            env.bind(v, val);
        }
    }

    /// The concrete process-space box at a problem size: inclusive
    /// `(min, max)` per dimension.
    pub fn ps_box(&self, env: &Env) -> Vec<(i64, i64)> {
        self.ps_min
            .iter()
            .zip(&self.ps_max)
            .map(|(lo, hi)| (lo.eval_int(env), hi.eval_int(env)))
            .collect()
    }

    /// All process-space points at a problem size, row-major.
    pub fn ps_points(&self, env: &Env) -> Vec<Vec<i64>> {
        let bx = self.ps_box(env);
        let mut out = Vec::new();
        let mut p: Vec<i64> = bx.iter().map(|&(lo, _)| lo).collect();
        if bx.iter().any(|&(lo, hi)| lo > hi) {
            return out;
        }
        loop {
            out.push(p.clone());
            let mut d = bx.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                p[d] += 1;
                if p[d] <= bx[d].1 {
                    break;
                }
                p[d] = bx[d].0;
            }
        }
    }

    /// Evaluate `first` at a process position; `None` for null processes
    /// (points of `PS \ CS`).
    pub fn first_at(&self, env_sizes: &Env, y: &[i64]) -> Option<Vec<i64>> {
        let mut env = env_sizes.clone();
        self.bind_coords(&mut env, y);
        self.first_bound(&env)
    }

    /// [`SystolicProgram::first_at`] with the coordinates already bound —
    /// the clone-free form for callers that sweep many points with one
    /// scratch environment (elaboration's per-point loop).
    pub fn first_bound(&self, env_y: &Env) -> Option<Vec<i64>> {
        self.first.select(env_y).map(|p| eval_point(p, env_y))
    }

    /// Evaluate `last` at a process position.
    pub fn last_at(&self, env_sizes: &Env, y: &[i64]) -> Option<Vec<i64>> {
        let mut env = env_sizes.clone();
        self.bind_coords(&mut env, y);
        self.last.select(&env).map(|p| eval_point(p, &env))
    }

    /// Is `y` in the computation space?
    pub fn in_cs(&self, env_sizes: &Env, y: &[i64]) -> bool {
        self.first_at(env_sizes, y).is_some()
    }

    /// The repeater length at `y` (`count`), 0 for null processes.
    pub fn count_at(&self, env_sizes: &Env, y: &[i64]) -> i64 {
        let mut env = env_sizes.clone();
        self.bind_coords(&mut env, y);
        self.count_bound(&env)
    }

    /// [`SystolicProgram::count_at`] with the coordinates already bound.
    pub fn count_bound(&self, env_y: &Env) -> i64 {
        self.count.select(env_y).map_or(0, |c| c.eval_int(env_y))
    }

    /// The chord of index points process `y` executes, in step order.
    pub fn chord_at(&self, env_sizes: &Env, y: &[i64]) -> Vec<Vec<i64>> {
        let Some(first) = self.first_at(env_sizes, y) else {
            return Vec::new();
        };
        let n = self.count_at(env_sizes, y);
        let mut out = Vec::with_capacity(n.max(0) as usize);
        let mut x = first;
        for _ in 0..n {
            out.push(x.clone());
            x = systolic_math::point::add(&x, &self.increment);
        }
        out
    }

    /// Evaluate a stream's soak / drain / pass counts at `y` (0 when no
    /// clause matches — a process not involved with the stream).
    pub fn stream_count_at(&self, which: &Piecewise<Affine>, env_sizes: &Env, y: &[i64]) -> i64 {
        let mut env = env_sizes.clone();
        self.bind_coords(&mut env, y);
        Self::stream_count_bound(which, &env)
    }

    /// [`SystolicProgram::stream_count_at`] with the coordinates already
    /// bound.
    pub fn stream_count_bound(which: &Piecewise<Affine>, env_y: &Env) -> i64 {
        which.select(env_y).map_or(0, |c| c.eval_int(env_y))
    }

    /// Evaluate `first_s` / `last_s` at an i/o process position.
    pub fn stream_point_at(
        &self,
        which: &Piecewise<AffinePoint>,
        env_sizes: &Env,
        y: &[i64],
    ) -> Option<Vec<i64>> {
        let mut env = env_sizes.clone();
        self.bind_coords(&mut env, y);
        Self::stream_point_bound(which, &env)
    }

    /// [`SystolicProgram::stream_point_at`] with the coordinates already
    /// bound.
    pub fn stream_point_bound(which: &Piecewise<AffinePoint>, env_y: &Env) -> Option<Vec<i64>> {
        which.select(env_y).map(|p| eval_point(p, env_y))
    }

    /// Partially evaluate the per-point schedule quantities at a problem
    /// size (`env_sizes` binds every size symbol). The returned evaluators
    /// answer the same questions as [`SystolicProgram::first_bound`],
    /// [`SystolicProgram::count_bound`] and
    /// [`SystolicProgram::stream_count_bound`] — identically, clause order
    /// included — but in pure integer arithmetic over the coordinate
    /// vector, which is what makes elaboration's sweep over every
    /// process-space point cheap (see `systolic_math::speceval`).
    pub fn specialize(&self, env_sizes: &Env) -> SpecSchedule {
        let dims = &self.coords;
        SpecSchedule {
            first: SpecPoint::of_points(&self.first, dims, env_sizes),
            count: SpecCount::of(&self.count, dims, env_sizes),
            streams: self
                .streams
                .iter()
                .map(|sp| SpecStream {
                    soak: SpecCount::of(&sp.soak, dims, env_sizes),
                    drain: SpecCount::of(&sp.drain, dims, env_sizes),
                })
                .collect(),
        }
    }
}

/// A stream's soak/drain counts, size-specialized.
pub struct SpecStream {
    pub soak: SpecCount,
    pub drain: SpecCount,
}

/// The schedule quantities elaboration queries at every process-space
/// point, size-specialized by [`SystolicProgram::specialize`].
pub struct SpecSchedule {
    first: SpecPoint,
    count: SpecCount,
    /// Indexed by `StreamId`.
    pub streams: Vec<SpecStream>,
}

impl SpecSchedule {
    /// `first` at `y`; `None` for null processes.
    pub fn first_at(&self, y: &[i64]) -> Option<Vec<i64>> {
        self.first.point_at(y)
    }

    /// The repeater length at `y`, 0 for null processes.
    pub fn count_at(&self, y: &[i64]) -> i64 {
        self.count.at(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn ps_points_enumerate_the_box() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], 1);
        let pts = plan.ps_points(&env);
        assert_eq!(pts.len(), 9, "(2n+1)^2 at n = 1");
        assert!(pts.contains(&vec![-1, -1]));
        assert!(pts.contains(&vec![1, 1]));
    }
}
