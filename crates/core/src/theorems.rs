//! The theorems of Appendix B as executable checks.
//!
//! The paper proves these once and for all; we *check* them on concrete
//! instances — every compiled plan can be audited, and the property-test
//! suites drive them across randomized programs and arrays.

use crate::plan::{StreamKind, SystolicProgram};
use systolic_ir::StreamId;
use systolic_math::{point, Env, Rational};

/// The outcome of auditing one plan against Appendix B.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TheoremReport {
    pub failures: Vec<String>,
}

impl TheoremReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn check(&mut self, cond: bool, label: &str) {
        if !cond {
            self.failures.push(label.to_string());
        }
    }
}

/// Theorem 1: `dim(null.place) = 1`.
pub fn thm1_null_place_dim(plan: &SystolicProgram) -> bool {
    plan.array.place.null_space().len() == 1
}

/// Theorem 3: `step.null_p != 0`.
pub fn thm3_step_nonzero_on_null(plan: &SystolicProgram) -> bool {
    plan.array
        .place
        .null_generator()
        .is_some_and(|g| point::dot(&plan.array.step, &g) != 0)
}

/// Theorem 4: all points projected onto the same `y` lie on one line —
/// checked exhaustively at a problem size.
pub fn thm4_chords_are_lines(plan: &SystolicProgram, env: &Env) -> bool {
    use std::collections::HashMap;
    let mut groups: HashMap<Vec<i64>, Vec<Vec<i64>>> = HashMap::new();
    for x in plan.source.index_space_seq(env) {
        groups.entry(plan.array.place_at(&x)).or_default().push(x);
    }
    groups.values().all(|pts| {
        pts.iter().all(|x| {
            let d = point::sub(x, &pts[0]);
            point::is_zero(&d) || point::exact_div(&d, &plan.increment).is_some()
        })
    })
}

/// Theorem 5: `increment in null.place`.
pub fn thm5_increment_in_null_place(plan: &SystolicProgram) -> bool {
    plan.array
        .place
        .apply(&plan.increment)
        .iter()
        .all(|q| q.is_zero())
}

/// Theorem 6: `step.increment > 0`.
pub fn thm6_step_increment_positive(plan: &SystolicProgram) -> bool {
    point::dot(&plan.array.step, &plan.increment) > 0
}

/// Theorem 7 (corollary): any two index points with equal place differ by
/// an integer multiple of `increment` — checked at a problem size.
pub fn thm7_integer_multiples(plan: &SystolicProgram, env: &Env) -> bool {
    thm4_chords_are_lines(plan, env)
}

/// Theorem 8: `sgn(x.i - x'.i) = sgn(step.x - step.x') * sgn(increment.i)`
/// whenever `place.x = place.x'` — checked at a problem size.
pub fn thm8_sign_relation(plan: &SystolicProgram, env: &Env) -> bool {
    use std::collections::HashMap;
    let mut groups: HashMap<Vec<i64>, Vec<Vec<i64>>> = HashMap::new();
    for x in plan.source.index_space_seq(env) {
        groups.entry(plan.array.place_at(&x)).or_default().push(x);
    }
    groups.values().all(|pts| {
        pts.iter().all(|x| {
            pts.iter().all(|x2| {
                (0..plan.r).all(|i| {
                    (x[i] - x2[i]).signum()
                        == (plan.array.step_at(x) - plan.array.step_at(x2)).signum()
                            * plan.increment[i].signum()
                })
            })
        })
    })
}

/// Theorem 9: if `increment.i != 0`, two distinct index points agreeing in
/// coordinate `i` have distinct places — checked at a problem size.
pub fn thm9_injective_on_faces(plan: &SystolicProgram, env: &Env) -> bool {
    let pts: Vec<Vec<i64>> = plan.source.index_space_seq(env).collect();
    (0..plan.r).filter(|&i| plan.increment[i] != 0).all(|i| {
        use std::collections::HashSet;
        // Group by the fixed coordinate; places must be unique per group.
        let mut seen: HashSet<(i64, Vec<i64>)> = HashSet::new();
        pts.iter()
            .all(|x| seen.insert((x[i], plan.array.place_at(x))))
    })
}

/// Theorem 10: `flow` is single-valued — the ratio is identical for every
/// pair of statements sharing a stream element (checked at a size).
pub fn thm10_flow_single_valued(plan: &SystolicProgram, env: &Env, s: StreamId) -> bool {
    use std::collections::HashMap;
    let m = &plan.source.stream(s).index_map;
    let mut by_elem: HashMap<Vec<i64>, Vec<Vec<i64>>> = HashMap::new();
    for x in plan.source.index_space_seq(env) {
        by_elem.entry(m.apply_int(&x)).or_default().push(x);
    }
    let flow = &plan.stream(s).flow;
    by_elem.values().all(|ops| {
        ops.iter().skip(1).all(|x| {
            let dt = plan.array.step_at(x) - plan.array.step_at(&ops[0]);
            if dt == 0 {
                return false; // would be a broadcast
            }
            let dp = point::sub(&plan.array.place_at(x), &plan.array.place_at(&ops[0]));
            let ratio: Vec<Rational> = dp.iter().map(|&c| Rational::new(c, dt)).collect();
            &ratio == flow
        })
    })
}

/// Theorem 11: `increment_s = M . increment` for moving streams; for
/// stationary streams, the variable-space image `M . delta` of the
/// loading & recovery vector (`place . delta = v`).
pub fn thm11_stream_increment(plan: &SystolicProgram, s: StreamId) -> bool {
    match &plan.stream(s).kind {
        StreamKind::Moving => {
            plan.stream(s).increment_s == plan.source.stream(s).index_map.apply_int(&plan.increment)
        }
        StreamKind::Stationary { loading_vector } => crate::iocomm::loading_increment(
            &plan.source,
            &plan.array,
            &plan.increment,
            s,
            loading_vector,
        )
        .is_some_and(|inc| inc == plan.stream(s).increment_s),
    }
}

/// Audit a compiled plan against every theorem, at a concrete size.
pub fn audit(plan: &SystolicProgram, env: &Env) -> TheoremReport {
    let mut rep = TheoremReport::default();
    rep.check(thm1_null_place_dim(plan), "thm1: dim(null.place) = 1");
    rep.check(thm3_step_nonzero_on_null(plan), "thm3: step.null_p != 0");
    rep.check(thm4_chords_are_lines(plan, env), "thm4: chords are lines");
    rep.check(
        thm5_increment_in_null_place(plan),
        "thm5: increment in null.place",
    );
    rep.check(
        thm6_step_increment_positive(plan),
        "thm6: step.increment > 0",
    );
    rep.check(thm8_sign_relation(plan, env), "thm8: sign relation");
    rep.check(
        thm9_injective_on_faces(plan, env),
        "thm9: injectivity on faces",
    );
    for s in plan.source.stream_ids() {
        if plan.stream(s).kind == StreamKind::Moving {
            rep.check(
                thm10_flow_single_valued(plan, env, s),
                &format!("thm10: flow single-valued (stream {})", s.0),
            );
        }
        rep.check(
            thm11_stream_increment(plan, s),
            &format!("thm11: increment_s = M.increment (stream {})", s.0),
        );
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn all_paper_designs_pass_every_theorem() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            for n in 1..=4 {
                let mut env = Env::new();
                env.bind(p.sizes[0], n);
                let rep = audit(&plan, &env);
                assert!(rep.ok(), "{label} at n={n}: {:?}", rep.failures);
            }
        }
    }

    #[test]
    fn gallery_designs_pass_every_theorem() {
        use systolic_ir::gallery;
        for p in gallery::all() {
            let Some(a) = systolic_synthesis::derive_array(&p, 2, 4) else {
                panic!("{}: no array", p.name)
            };
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let mut env = Env::new();
            for &s in &p.sizes {
                env.bind(s, 3);
            }
            let rep = audit(&plan, &env);
            assert!(rep.ok(), "{}: {:?}", p.name, rep.failures);
        }
    }
}
