//! Paper-style textual report of a compiled plan: the derived quantities
//! as the appendices present them. Used by the examples and by
//! `EXPERIMENTS.md` generation.

use crate::plan::{StreamKind, SystolicProgram};
use std::fmt::Write as _;
use systolic_math::affine::display_point;
use systolic_math::{point, Affine, Guard, Piecewise};

fn fmt_piecewise_point(
    pw: &Piecewise<Vec<Affine>>,
    plan: &SystolicProgram,
    indent: &str,
) -> String {
    fmt_piecewise(pw, plan, indent, |p| display_point(p, &plan.vars))
}

fn fmt_piecewise_scalar(pw: &Piecewise<Affine>, plan: &SystolicProgram, indent: &str) -> String {
    fmt_piecewise(pw, plan, indent, |e| e.display(&plan.vars))
}

fn fmt_piecewise<T>(
    pw: &Piecewise<T>,
    plan: &SystolicProgram,
    indent: &str,
    mut f: impl FnMut(&T) -> String,
) -> String {
    let always = |g: &Guard| g.is_always();
    if pw.len() == 1 && always(&pw.clauses()[0].0) {
        return f(&pw.clauses()[0].1);
    }
    let mut out = String::new();
    let _ = writeln!(out, "if");
    for (g, v) in pw.clauses() {
        let _ = writeln!(out, "{indent}  [] {}  ->  {}", g.display(&plan.vars), f(v));
    }
    let _ = writeln!(out, "{indent}  [] else -> null");
    let _ = write!(out, "{indent}fi");
    out
}

/// Render the full derivation report.
pub fn render(plan: &SystolicProgram) -> String {
    let mut out = String::new();
    let v = &plan.vars;
    let _ = writeln!(out, "=== systolic program plan: {} ===", plan.source.name);
    let _ = writeln!(out, "r                : {}", plan.r);
    let _ = writeln!(out, "step             : {:?}", plan.array.step);
    let _ = writeln!(
        out,
        "place rows       : {:?}",
        (0..plan.array.place.rows())
            .map(|i| (0..plan.array.place.cols())
                .map(|j| plan.array.place.at(i, j).to_string())
                .collect::<Vec<_>>()
                .join(","))
            .collect::<Vec<_>>()
    );
    let _ = writeln!(out, "PS_min           : {}", display_point(&plan.ps_min, v));
    let _ = writeln!(out, "PS_max           : {}", display_point(&plan.ps_max, v));
    let _ = writeln!(
        out,
        "increment        : {}",
        point::fmt_point(&plan.increment)
    );
    let _ = writeln!(out, "simple place     : {}", plan.simple_place);
    let _ = writeln!(
        out,
        "first            : {}",
        fmt_piecewise_point(&plan.first, plan, "  ")
    );
    let _ = writeln!(
        out,
        "last             : {}",
        fmt_piecewise_point(&plan.last, plan, "  ")
    );
    let _ = writeln!(
        out,
        "count            : {}",
        fmt_piecewise_scalar(&plan.count, plan, "  ")
    );
    for sp in &plan.streams {
        let _ = writeln!(out, "--- stream {} ---", sp.name);
        let kind = match &sp.kind {
            StreamKind::Moving => "moving".to_string(),
            StreamKind::Stationary { loading_vector } => {
                format!(
                    "stationary (loading vector {})",
                    point::fmt_point(loading_vector)
                )
            }
        };
        let _ = writeln!(out, "  kind           : {kind}");
        let _ = writeln!(out, "  flow           : {}", point::fmt_rat_point(&sp.flow));
        let _ = writeln!(
            out,
            "  denominator    : {} ({} internal buffer(s))",
            sp.denominator,
            sp.denominator - 1
        );
        let _ = writeln!(
            out,
            "  increment_s    : {}",
            point::fmt_point(&sp.increment_s)
        );
        let _ = writeln!(
            out,
            "  first_s        : {}",
            fmt_piecewise_point(&sp.first_s, plan, "    ")
        );
        let _ = writeln!(
            out,
            "  last_s         : {}",
            fmt_piecewise_point(&sp.last_s, plan, "    ")
        );
        let _ = writeln!(
            out,
            "  soak/recover   : {}",
            fmt_piecewise_scalar(&sp.soak, plan, "    ")
        );
        let _ = writeln!(
            out,
            "  drain/load     : {}",
            fmt_piecewise_scalar(&sp.drain, plan, "    ")
        );
        let _ = writeln!(
            out,
            "  pass total     : {}",
            fmt_piecewise_scalar(&sp.pass_total, plan, "    ")
        );
        let dims: Vec<String> = sp
            .io_dims
            .iter()
            .map(|d| {
                format!(
                    "dim {} (inputs at {}{})",
                    d.dim,
                    if d.input_at_min { "min" } else { "max" },
                    if d.exclude_dims.is_empty() {
                        String::new()
                    } else {
                        format!(", excluding dims {:?}", d.exclude_dims)
                    }
                )
            })
            .collect();
        let _ = writeln!(out, "  io boundaries  : [{}]", dims.join("; "));
    }
    out
}

/// Render the process-space layout at a concrete size as an ASCII grid
/// (2-D) or line (1-D): `#` computation cells, `.` null processes
/// (external buffers). The hardware papers' "array figure", textually.
pub fn render_layout(plan: &SystolicProgram, env: &systolic_math::Env) -> String {
    let mut out = String::new();
    let bx = plan.ps_box(env);
    match bx.len() {
        1 => {
            let (lo, hi) = bx[0];
            let _ = write!(out, "cols {lo}..{hi}: ");
            for col in lo..=hi {
                out.push(if plan.in_cs(env, &[col]) { '#' } else { '.' });
            }
            let _ = writeln!(out);
        }
        2 => {
            let (clo, chi) = bx[0];
            let (rlo, rhi) = bx[1];
            let _ = writeln!(
                out,
                "cols {clo}..{chi} (x), rows {rlo}..{rhi} (y, top down):"
            );
            for row in (rlo..=rhi).rev() {
                let _ = write!(out, "{row:>4} | ");
                for col in clo..=chi {
                    out.push(if plan.in_cs(env, &[col, row]) {
                        '#'
                    } else {
                        '.'
                    });
                    out.push(' ');
                }
                let _ = writeln!(out);
            }
        }
        d => {
            let _ = writeln!(out, "({d}-dimensional process space; no ASCII rendering)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::compile::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn reports_render_for_all_designs() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let text = super::render(&plan);
            assert!(text.contains("increment"), "{label}");
            assert!(text.contains("stream a"), "{label}");
            assert!(text.len() > 400, "{label}: report too short");
        }
    }

    #[test]
    fn layouts_render() {
        use systolic_math::Env;
        // E.2 at n=2: the diagonal band in a 5x5 grid.
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 2);
        let grid = super::render_layout(&plan, &env);
        assert!(grid.contains('#'));
        assert!(grid.contains('.'), "E.2 has null processes");
        let hashes = grid.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes, 19, "band |col-row| <= 2 in the 5x5 box");
        // D.1 at n=3: a full line.
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let line = super::render_layout(&plan, &env);
        assert!(line.contains("####"));
        let cells = line.split(": ").nth(1).unwrap().trim();
        assert!(!cells.contains('.'), "no null processes for a simple place");
    }

    #[test]
    fn d1_report_contains_paper_values() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let text = super::render(&plan);
        assert!(text.contains("PS_min           : 0"));
        assert!(text.contains("PS_max           : n"));
        assert!(text.contains("increment        : (0,1)"));
        assert!(text.contains("flow           : 1/2"), "b's fractional flow");
    }
}
