//! Derivation of the computation repeaters (Secs. 6.2 and 7.2): the
//! `increment` along each chord, and the guarded case analyses for `first`
//! and `last`.

use crate::basis::is_simple_place;
use crate::error::CompileError;
use systolic_ir::SourceProgram;
use systolic_math::{
    affine::{point_sub, AffinePoint},
    linsolve, Affine, Chain, Guard, Matrix, Piecewise, Var,
};
use systolic_synthesis::SystolicArray;

/// Sec. 7.2.1: `increment = sgn(step.w) * (1/k) * w` for any
/// `w in null.place`. [`SystolicArray::projection_direction`] already
/// returns the primitive, step-oriented generator; here we also enforce
/// restriction A.2 (`increment in {-1,0,+1}^r`).
pub fn derive_increment(array: &SystolicArray) -> Result<Vec<i64>, CompileError> {
    let inc = array.projection_direction().ok_or(CompileError::Array(
        systolic_synthesis::ArrayError::StepPlaceInconsistent,
    ))?;
    if inc.iter().any(|&c| c.abs() > 1) {
        return Err(CompileError::IncrementNotUnit { increment: inc });
    }
    Ok(inc)
}

/// Which endpoint is being derived; `last` swaps the roles of the bounds
/// (Sec. 7.2.2: "the derivation of last proceeds identically with the
/// roles of the left bound and right bound interchanged").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Endpoint {
    First,
    Last,
}

/// Derive `first` or `last` as a guarded case analysis with one
/// alternative per face of the index space (Sec. 7.2.2), or the single
/// unguarded expression of the simple-place special case (Sec. 7.2.3).
pub fn derive_endpoint(
    program: &SourceProgram,
    array: &SystolicArray,
    increment: &[i64],
    coords: &[Var],
    which: Endpoint,
) -> Result<Piecewise<AffinePoint>, CompileError> {
    let r = program.r();
    let simple = is_simple_place(increment);
    let mut clauses = Vec::new();

    for face in 0..r {
        if increment[face] == 0 {
            continue; // chord parallel to this dimension: not a face.
        }
        // bound_i: the left bound if increment.i > 0 for `first`
        // (reversed for `last`).
        let take_lb = (increment[face] > 0) == (which == Endpoint::First);
        let bound = if take_lb {
            program.loops[face].lb.clone()
        } else {
            program.loops[face].rb.clone()
        };

        // Solve place.(x; face := bound) = y for the r-1 unknowns x_j.
        let unknowns: Vec<usize> = (0..r).filter(|&j| j != face).collect();
        let a = Matrix::from_rat_rows(
            &(0..r - 1)
                .map(|row| unknowns.iter().map(|&j| array.place.at(row, j)).collect())
                .collect::<Vec<_>>(),
        );
        let rhs: Vec<Affine> = (0..r - 1)
            .map(|row| Affine::var(coords[row]) - bound.clone().scale(array.place.at(row, face)))
            .collect();
        let Some(solution) = linsolve::solve(&a, &rhs) else {
            // Theorem 9 guarantees solvability when increment.face != 0;
            // a singular system means the array is inconsistent.
            return Err(CompileError::NonIntegerSolution {
                face,
                detail: "singular face system".into(),
            });
        };

        // Assemble the full index point and its guard.
        let mut point = vec![Affine::zero(); r];
        point[face] = bound;
        let mut guard = Guard::always();
        for (pos, &j) in unknowns.iter().enumerate() {
            let e = solution[pos].clone();
            require_integral(&e, face)?;
            guard = guard.and_chain(Chain::between(
                program.loops[j].lb.clone(),
                e.clone(),
                program.loops[j].rb.clone(),
            ));
            point[j] = e;
        }
        let guard = if simple {
            // Sec. 7.2.3: CS = PS, one expression covers every process;
            // no guards are needed.
            Guard::always()
        } else {
            guard
        };
        clauses.push((guard, point));
    }
    Ok(Piecewise::new(clauses))
}

fn require_integral(e: &Affine, face: usize) -> Result<(), CompileError> {
    let ok = e.constant_part().is_integer() && e.vars().all(|v| e.coeff(v).is_integer());
    if ok {
        Ok(())
    } else {
        Err(CompileError::NonIntegerSolution {
            face,
            detail: "rational coefficients".into(),
        })
    }
}

/// `count = ((last - first) // increment) + 1` (eq. 4), defined piecewise
/// over the crossed guards of `first` and `last` ("when any of these are
/// defined piece-wise, the calculation is done piece-wise", Sec. 7.6).
pub fn derive_count(
    first: &Piecewise<AffinePoint>,
    last: &Piecewise<AffinePoint>,
    increment: &[i64],
) -> Result<Piecewise<Affine>, CompileError> {
    let mut failed = false;
    let count = first.cross(last, |f, l| {
        match systolic_math::affine::point_exact_div(&point_sub(l, f), increment) {
            Some(q) => q + Affine::int(1),
            None => {
                failed = true;
                Affine::zero()
            }
        }
    });
    if failed {
        return Err(CompileError::DivisionFailed {
            what: "count",
            stream: None,
        });
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_math::affine::display_point;
    use systolic_math::{Env, VarTable};
    use systolic_synthesis::placement::paper;

    fn setup(
        pair: (SourceProgram, SystolicArray),
    ) -> (SourceProgram, SystolicArray, VarTable, Vec<Var>, Vec<i64>) {
        let (p, a) = pair;
        let mut vars = p.vars.clone();
        let coords: Vec<Var> = (0..p.r() - 1).map(|d| vars.coord(d)).collect();
        let inc = derive_increment(&a).unwrap();
        (p, a, vars, coords, inc)
    }

    #[test]
    fn increment_matches_paper() {
        let (_, _, _, _, inc) = setup(paper::polyprod_d1());
        assert_eq!(inc, vec![0, 1], "D.1");
        let (_, _, _, _, inc) = setup(paper::polyprod_d2());
        assert_eq!(inc, vec![1, -1], "D.2");
        let (_, _, _, _, inc) = setup(paper::matmul_e1());
        assert_eq!(inc, vec![0, 0, 1], "E.1");
        let (_, _, _, _, inc) = setup(paper::matmul_e2());
        assert_eq!(inc, vec![1, 1, 1], "E.2");
    }

    #[test]
    fn d1_first_last_are_unguarded() {
        let (p, a, vars, coords, inc) = setup(paper::polyprod_d1());
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        assert_eq!(first.len(), 1);
        assert!(first.clauses()[0].0.is_always());
        assert_eq!(display_point(&first.clauses()[0].1, &vars), "(col, 0)");
        assert_eq!(display_point(&last.clauses()[0].1, &vars), "(col, n)");
        let count = derive_count(&first, &last, &inc).unwrap();
        assert_eq!(count.clauses()[0].1.display(&vars), "n + 1");
    }

    #[test]
    fn d2_first_last_two_cases() {
        let (p, a, vars, coords, inc) = setup(paper::polyprod_d2());
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        assert_eq!(first.len(), 2);
        // Face 0: (0, col) guarded by 0 <= col <= n.
        let (g0, p0) = &first.clauses()[0];
        assert_eq!(display_point(p0, &vars), "(0, col)");
        assert_eq!(g0.display(&vars), "0 <= col <= n");
        // Face 1: (col - n, n) guarded by 0 <= col - n <= n.
        let (g1, p1) = &first.clauses()[1];
        assert_eq!(display_point(p1, &vars), "(col - n, n)");
        assert_eq!(g1.display(&vars), "0 <= col - n <= n");

        // `last` has the same two faces; we emit them in face order
        // (face 0 first), the paper in guard order — equivalent.
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        assert_eq!(display_point(&last.clauses()[0].1, &vars), "(n, col - n)");
        assert_eq!(display_point(&last.clauses()[1].1, &vars), "(col, 0)");

        // count: piecewise col + 1 / 2n - col + 1 (Appendix D.2.2).
        let count = derive_count(&first, &last, &inc).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let col = coords[0];
        for (c, expect) in [(0i64, 1i64), (2, 3), (4, 5), (5, 4), (8, 1)] {
            env.bind(col, c);
            assert_eq!(
                count.select(&env).unwrap().eval_int(&env),
                expect,
                "col={c}"
            );
        }
    }

    #[test]
    fn e1_simple_place() {
        let (p, a, vars, coords, inc) = setup(paper::matmul_e1());
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(display_point(&first.clauses()[0].1, &vars), "(col, row, 0)");
        assert_eq!(display_point(&last.clauses()[0].1, &vars), "(col, row, n)");
        let count = derive_count(&first, &last, &inc).unwrap();
        assert_eq!(count.clauses()[0].1.display(&vars), "n + 1");
    }

    #[test]
    fn e2_three_cases_match_paper() {
        let (p, a, vars, coords, inc) = setup(paper::matmul_e2());
        let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
        assert_eq!(first.len(), 3);
        let rendered: Vec<(String, String)> = first
            .clauses()
            .iter()
            .map(|(g, pt)| (g.display(&vars), display_point(pt, &vars)))
            .collect();
        // Appendix E.2.2's expression for first.
        assert_eq!(rendered[0].1, "(0, row - col, -col)");
        assert_eq!(rendered[0].0, "0 <= row - col <= n  /\\  0 <= -col <= n");
        assert_eq!(rendered[1].1, "(col - row, 0, -row)");
        assert_eq!(rendered[1].0, "0 <= col - row <= n  /\\  0 <= -row <= n");
        assert_eq!(rendered[2].1, "(col, row, 0)");
        assert_eq!(rendered[2].0, "0 <= col <= n  /\\  0 <= row <= n");

        let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
        let rendered: Vec<String> = last
            .clauses()
            .iter()
            .map(|(_, pt)| display_point(pt, &vars))
            .collect();
        // Paper: (n, row-col+n, -col+n) etc.; our canonical term order
        // renders the same polynomials with `n` leading.
        assert_eq!(rendered[0], "(n, n + row - col, n - col)");
        assert_eq!(rendered[1], "(n + col - row, n, n - row)");
        assert_eq!(rendered[2], "(n + col, n + row, n)");
    }

    #[test]
    fn chords_agree_with_direct_projection() {
        // For every PS point, the repeater enumeration must equal the set
        // of index points projecting there, ordered by step.
        for (label, p, a) in paper::all() {
            let mut vars = p.vars.clone();
            let coords: Vec<Var> = (0..p.r() - 1).map(|d| vars.coord(d)).collect();
            let inc = derive_increment(&a).unwrap();
            let first = derive_endpoint(&p, &a, &inc, &coords, Endpoint::First).unwrap();
            let last = derive_endpoint(&p, &a, &inc, &coords, Endpoint::Last).unwrap();
            let n = 3i64;
            let mut env = Env::new();
            env.bind(p.sizes[0], n);

            use std::collections::HashMap;
            let mut chords: HashMap<Vec<i64>, Vec<Vec<i64>>> = HashMap::new();
            for x in p.index_space_seq(&env) {
                chords.entry(a.place_at(&x)).or_default().push(x);
            }
            for (y, mut chord) in chords {
                chord.sort_by_key(|x| a.step_at(x));
                let mut env_y = env.clone();
                for (d, &c) in coords.iter().enumerate() {
                    env_y.bind(c, y[d]);
                }
                let f = first
                    .select(&env_y)
                    .map(|pt| systolic_math::affine::eval_point(pt, &env_y));
                let l = last
                    .select(&env_y)
                    .map(|pt| systolic_math::affine::eval_point(pt, &env_y));
                assert_eq!(f.as_ref(), chord.first(), "{label} first at {y:?}");
                assert_eq!(l.as_ref(), chord.last(), "{label} last at {y:?}");
            }
        }
    }
}
