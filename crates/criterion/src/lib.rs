//! Offline shim for the `criterion` API subset used by this workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `criterion` to this crate (see `[patch.crates-io]`
//! in the root `Cargo.toml`). Benchmarks compile and run unchanged:
//! each `bench_function` warms up, auto-scales an iteration count so a
//! sample is long enough to time, collects bounded samples, and prints
//! best/mean ns per iteration. There are no statistical reports, plots,
//! or baselines — the point is that bench code keeps compiling and gives
//! a usable smoke timing, while real runs use `BENCH_simulate.json`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

// Stop sampling a benchmark once this much measurement time is spent,
// even if fewer than `sample_size` samples were taken: `cargo bench`
// in CI must stay fast.
const MAX_TOTAL_PER_BENCH: Duration = Duration::from_millis(300);
const TARGET_SAMPLE_TIME: Duration = Duration::from_micros(500);
const MAX_SAMPLES: usize = 30;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Builder-style, matching `Criterion::default().sample_size(20)`.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// How to amortize setup cost in `iter_batched`. The shim runs one batch
/// per sample regardless, so the variants only exist for API parity.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>, // ns per iteration, one entry per sample
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also primes caches/allocs
        // Scale iterations-per-sample so one sample is long enough for
        // the clock to resolve even for nanosecond routines.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        while self.samples.len() < self.sample_size.min(MAX_SAMPLES) && total < MAX_TOTAL_PER_BENCH
        {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            total += dt;
            self.samples.push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        while self.samples.len() < self.sample_size.min(MAX_SAMPLES) && total < MAX_TOTAL_PER_BENCH
        {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            total += dt;
            self.samples.push(dt.as_nanos() as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let best = bencher.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
    println!(
        "{id:<40} best {best:>12.1} ns/iter  mean {mean:>12.1} ns/iter  ({} samples)",
        bencher.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`/`--quick`; the
            // shim has no tunables, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64) + 2));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * n)
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
