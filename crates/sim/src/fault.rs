//! Fault injection: bounded rendezvous delays, stalled workers, and
//! aborted processes.
//!
//! Each fault has a precise contract against the paper's model:
//!
//! - **Delay** (coop engine): a channel's rendezvous is deferred a
//!   bounded number of rounds via the [`SchedulePolicy`] deferral hook.
//!   Rounds may grow; messages, steps, and the final store must not
//!   change (asynchronous semantics tolerates any finite slowdown).
//! - **Stall** (OS-thread executors): a worker sleeps briefly before
//!   each step. Wall-clock grows; results must not change.
//! - **Abort**: a process is replaced by one that blocks forever on a
//!   poison channel nobody serves. The run must fail *diagnosably*: the
//!   cooperative engine's exact deadlock report names the victim; the
//!   threaded executors convert the stuck rendezvous into a structured
//!   timeout.

use std::time::Duration;
use systolic_runtime::{ChanId, CommReq, Process, SchedulePolicy, Value};

/// One injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Replace process `victim` with a forever-blocked poison receive.
    Abort { victim: usize },
    /// Sleep `micros` before every step of process `victim`.
    Stall { victim: usize, micros: u64 },
    /// Defer channel `chan`'s rendezvous for its next `rounds` enabled
    /// rounds (cooperative engine only).
    Delay { chan: ChanId, rounds: u64 },
}

/// A set of faults to apply to one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn abort(victim: usize) -> FaultPlan {
        FaultPlan {
            faults: vec![Fault::Abort { victim }],
        }
    }

    pub fn stall(victim: usize, micros: u64) -> FaultPlan {
        FaultPlan {
            faults: vec![Fault::Stall { victim, micros }],
        }
    }

    pub fn delay(chan: ChanId, rounds: u64) -> FaultPlan {
        FaultPlan {
            faults: vec![Fault::Delay { chan, rounds }],
        }
    }

    /// Rewrite an instantiated process vector, applying the abort and
    /// stall faults. `poison_base` must be a channel range nobody uses
    /// (pass the module's `n_chans`): victim `i` blocks on
    /// `poison_base + i`, so even multiple aborts stay point-to-point.
    pub fn apply(
        &self,
        mut procs: Vec<Box<dyn Process>>,
        poison_base: ChanId,
    ) -> Vec<Box<dyn Process>> {
        for fault in &self.faults {
            match *fault {
                Fault::Abort { victim } if victim < procs.len() => {
                    let label = procs[victim].label();
                    procs[victim] = Box::new(AbortProc {
                        label,
                        poison: poison_base + victim,
                        started: false,
                    });
                }
                Fault::Stall { victim, micros } if victim < procs.len() => {
                    let inner = std::mem::replace(
                        &mut procs[victim],
                        Box::new(TombstoneProc) as Box<dyn Process>,
                    );
                    procs[victim] = Box::new(StallProc { inner, micros });
                }
                _ => {}
            }
        }
        procs
    }

    /// The schedule policy realizing this plan's delay faults (identity
    /// when there are none).
    pub fn delay_policy(&self) -> DelayPolicy {
        DelayPolicy {
            pending: self
                .faults
                .iter()
                .filter_map(|f| match *f {
                    Fault::Delay { chan, rounds } => Some((chan, rounds)),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Labels of the abort victims, resolved against the live processes
    /// (for asserting that failure reports name them).
    pub fn victims(&self) -> Vec<usize> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Abort { victim } => Some(victim),
                _ => None,
            })
            .collect()
    }
}

/// The aborted process: asks once for a value nobody will ever send and
/// keeps its victim's label so deadlock reports stay attributable.
struct AbortProc {
    label: String,
    poison: ChanId,
    started: bool,
}

impl Process for AbortProc {
    fn step(&mut self, _received: &[Value]) -> Vec<CommReq> {
        if self.started {
            // Unreachable in a well-formed network (nobody sends on the
            // poison channel); terminate defensively if replayed oddly.
            return Vec::new();
        }
        self.started = true;
        vec![CommReq::Recv { chan: self.poison }]
    }

    fn label(&self) -> String {
        format!("{} (aborted)", self.label)
    }
}

/// The stalled process: delegates to the victim after a bounded sleep.
struct StallProc {
    inner: Box<dyn Process>,
    micros: u64,
}

impl Process for StallProc {
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        std::thread::sleep(Duration::from_micros(self.micros));
        self.inner.step_into(received, out);
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

/// Placeholder used mid-swap in [`FaultPlan::apply`]; never stepped.
struct TombstoneProc;

impl Process for TombstoneProc {
    fn step(&mut self, _received: &[Value]) -> Vec<CommReq> {
        Vec::new()
    }
}

/// Defers each faulted channel's rendezvous for its budgeted number of
/// enabled rounds, then lets it through — the bounded-delay fault. Pure
/// FIFO for every other channel.
pub struct DelayPolicy {
    /// (channel, remaining deferrals).
    pending: Vec<(ChanId, u64)>,
}

impl SchedulePolicy for DelayPolicy {
    fn schedule_round(&mut self, _round: u64, fire: &mut Vec<ChanId>, defer: &mut Vec<ChanId>) {
        if self.pending.iter().all(|&(_, n)| n == 0) {
            return;
        }
        let pending = &mut self.pending;
        fire.retain(|c| {
            if let Some(p) = pending.iter_mut().find(|(pc, n)| pc == c && *n > 0) {
                p.1 -= 1;
                defer.push(*c);
                false
            } else {
                true
            }
        });
    }

    fn label(&self) -> String {
        "delay-fault".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use systolic_runtime::{
        block_partition, run_partitioned, run_threaded, ChannelPolicy, Network, ProcIrBuilder,
        ProcIrModule, RunError,
    };

    /// source -> relay -> sink over 4 values; returns the sealed module.
    fn pipeline_module() -> Arc<ProcIrModule> {
        let mut b = ProcIrBuilder::new();
        b.source(0, &[10, 20, 30, 40], "src");
        b.relay(0, 1, 4, "relay");
        b.sink(1, 4, "snk");
        b.build(None)
    }

    fn run_coop(
        module: &Arc<ProcIrModule>,
        plan: &FaultPlan,
        with_delay: bool,
    ) -> Result<(Vec<i64>, systolic_runtime::RunStats), RunError> {
        let inst = module.instantiate();
        let procs = plan.apply(inst.procs, module.n_chans);
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        if with_delay {
            net.set_schedule_policy(Box::new(plan.delay_policy()));
        }
        for p in procs {
            net.add(p);
        }
        let stats = net.run()?;
        let values = inst.outputs[0].lock().clone();
        Ok((values, stats))
    }

    #[test]
    fn delay_fault_grows_rounds_but_not_results() {
        let module = pipeline_module();
        let clean = run_coop(&module, &FaultPlan::default(), false).unwrap();
        let delayed = run_coop(&module, &FaultPlan::delay(0, 3), true).unwrap();
        assert_eq!(delayed.0, clean.0, "store invariant under bounded delay");
        assert_eq!(delayed.1.messages, clean.1.messages);
        assert_eq!(delayed.1.steps, clean.1.steps);
        assert!(
            delayed.1.rounds > clean.1.rounds,
            "deferral must cost rounds: {} vs {}",
            delayed.1.rounds,
            clean.1.rounds
        );
    }

    #[test]
    fn abort_fault_deadlocks_the_coop_engine_naming_the_victim() {
        let module = pipeline_module();
        let err = run_coop(&module, &FaultPlan::abort(1), false).unwrap_err();
        let dl = err.as_deadlock().expect("abort must surface as deadlock");
        assert!(
            dl.blocked.iter().any(|b| b.contains("(aborted)")),
            "victim missing from report: {dl:?}"
        );
        assert!(
            dl.blocked.iter().any(|b| b.contains("relay")),
            "victim label lost: {dl:?}"
        );
    }

    #[test]
    fn abort_fault_times_out_the_threaded_executor() {
        let module = pipeline_module();
        let inst = module.instantiate();
        let procs = FaultPlan::abort(1).apply(inst.procs, module.n_chans);
        let err = run_threaded(procs, Duration::from_millis(200)).unwrap_err();
        assert!(
            matches!(err, RunError::Timeout { .. }),
            "expected structured timeout, got {err:?}"
        );
    }

    #[test]
    fn abort_fault_times_out_the_partitioned_executor() {
        let module = pipeline_module();
        let inst = module.instantiate();
        let procs = FaultPlan::abort(1).apply(inst.procs, module.n_chans);
        let groups = block_partition(3, 2);
        let err = run_partitioned(procs, groups, Duration::from_millis(200)).unwrap_err();
        assert!(
            matches!(err, RunError::Timeout { .. }),
            "expected structured timeout, got {err:?}"
        );
    }

    #[test]
    fn stall_fault_slows_but_does_not_change_threaded_results() {
        let module = pipeline_module();
        let inst = module.instantiate();
        let procs = FaultPlan::stall(1, 200).apply(inst.procs, module.n_chans);
        run_threaded(procs, Duration::from_secs(30)).unwrap();
        assert_eq!(*inst.outputs[0].lock(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn multiple_aborts_block_on_distinct_poison_channels() {
        let module = pipeline_module();
        let inst = module.instantiate();
        let plan = FaultPlan {
            faults: vec![Fault::Abort { victim: 0 }, Fault::Abort { victim: 1 }],
        };
        let procs = plan.apply(inst.procs, module.n_chans);
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for p in procs {
            net.add(p);
        }
        let err = net.run().unwrap_err();
        let dl = err.as_deadlock().unwrap();
        // Both victims present, blocked on different channels.
        let aborted: Vec<&String> = dl
            .blocked
            .iter()
            .filter(|b| b.contains("(aborted)"))
            .collect();
        assert_eq!(aborted.len(), 2, "{dl:?}");
        assert_ne!(aborted[0], aborted[1]);
    }
}
