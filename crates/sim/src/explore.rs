//! Schedule exploration: sweep a seed × policy matrix over a subject,
//! detect any schedule dependence, and shrink the offending decision log
//! to a minimal replayable prefix.
//!
//! The oracle is the paper's Sec. 4 schedule-independence theorem: a
//! correctly systolized program run under *any* legal interleaving
//! produces the same outputs, and under pure permutation policies the
//! same `RunStats` as well. A divergence is therefore always a bug — in
//! the compiled network, in the engine, or (deliberately, for the
//! harness's own mutation test) in a subject like [`RaceSubject`] whose
//! output depends on who fires first.

use crate::json::{parse, Json};
use crate::policy::{policy_by_name, RecordingPolicy, ReplayPolicy, ScheduleLog, ScheduleRound};
use std::sync::Arc;
use systolic_core::SystolicProgram;
use systolic_interp::{ElabOptions, ModuleStore};
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{
    canonicalize_transfers, first_divergence, shared, sink_buffer, ChanId, ChannelPolicy, CommReq,
    EventLogRecorder, Network, ProcIrModule, Process, RunError, RunStats, SchedulePolicy, Transfer,
    Value,
};

/// What one run produced: everything a schedule may not change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// The output sink buffers, in output-index order.
    pub outputs: Vec<Vec<Value>>,
    pub stats: RunStats,
    /// The transfer stream, canonicalized (sorted by round, channel,
    /// value) so legal same-round reorderings compare equal.
    pub transfers: Vec<Transfer>,
}

/// Something the explorer can run repeatedly under different schedule
/// policies. Each `run` must build a fresh network from the same
/// immutable description.
pub trait DstSubject {
    fn label(&self) -> String;
    fn run(&self, sched: Option<Box<dyn SchedulePolicy>>) -> Result<Outcome, RunError>;
    /// A schedule file identifying this subject, with an empty log.
    fn schedule_stub(&self) -> ScheduleFile;
}

/// A compiled systolic plan elaborated once at a fixed size with seeded
/// inputs; every `run` re-instantiates the immutable `ProcIrModule`.
pub struct PlanSubject {
    key: String,
    source: Option<String>,
    sizes: Vec<i64>,
    input_seed: u64,
    module: Arc<ProcIrModule>,
}

impl PlanSubject {
    /// Elaborate `plan` at `sizes` with the named inputs filled from
    /// `input_seed`. `key` identifies the design in schedule files;
    /// `source` carries the program text for non-registry designs so the
    /// file stays self-contained.
    pub fn from_plan(
        key: impl Into<String>,
        source: Option<String>,
        plan: &SystolicProgram,
        sizes: &[i64],
        inputs: &[&str],
        input_seed: u64,
    ) -> Result<PlanSubject, String> {
        let mut env = Env::new();
        for (&s, &v) in plan.source.sizes.iter().zip(sizes) {
            env.bind(s, v);
        }
        let mut store = HostStore::allocate(&plan.source, &env);
        for (i, name) in inputs.iter().enumerate() {
            store.fill_random(name, input_seed.wrapping_add(i as u64), -9, 9);
        }
        let cm = ModuleStore::global()
            .module(plan, &env, &store, &ElabOptions::default())
            .map_err(|e| format!("elaboration failed: {e}"))?;
        Ok(PlanSubject {
            key: key.into(),
            source,
            sizes: sizes.to_vec(),
            input_seed,
            module: cm.elab.module.clone(),
        })
    }
}

impl DstSubject for PlanSubject {
    fn label(&self) -> String {
        self.key.clone()
    }

    fn run(&self, sched: Option<Box<dyn SchedulePolicy>>) -> Result<Outcome, RunError> {
        let (handle, rec) = shared(EventLogRecorder::new());
        let inst = self.module.instantiate_recorded(std::slice::from_ref(&rec));
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        if let Some(s) = sched {
            net.set_schedule_policy(s);
        }
        net.add_recorder(rec.clone());
        for p in inst.procs {
            net.add(p);
        }
        let stats = net.run()?;
        let outputs = inst.outputs.iter().map(|b| b.lock().clone()).collect();
        let mut transfers = handle.lock().take_transfers();
        canonicalize_transfers(&mut transfers);
        Ok(Outcome {
            outputs,
            stats,
            transfers,
        })
    }

    fn schedule_stub(&self) -> ScheduleFile {
        ScheduleFile {
            design: self.key.clone(),
            source: self.source.clone(),
            sizes: self.sizes.clone(),
            input_seed: self.input_seed,
            policy: "fifo".into(),
            policy_seed: 0,
            reason: None,
            log: ScheduleLog::default(),
        }
    }
}

/// An input process: sends `values` on `chan`, in order.
struct ValueSource {
    chan: ChanId,
    values: Vec<Value>,
    next: usize,
}

impl Process for ValueSource {
    fn step(&mut self, _received: &[Value]) -> Vec<CommReq> {
        if self.next == self.values.len() {
            return Vec::new();
        }
        let value = self.values[self.next];
        self.next += 1;
        vec![CommReq::Send {
            chan: self.chan,
            value,
        }]
    }

    fn label(&self) -> String {
        format!("source@{}", self.chan)
    }
}

/// A sink that pushes into a buffer *shared with another sink* — the
/// seeded interleaving bug. Its merged output order is exactly the order
/// the scheduler re-steps the two sinks, so any policy that perturbs the
/// ready order diverges from the FIFO baseline.
struct RacingSink {
    chan: ChanId,
    remaining: usize,
    primed: bool,
    buf: systolic_runtime::SinkBuffer,
}

impl Process for RacingSink {
    fn step(&mut self, received: &[Value]) -> Vec<CommReq> {
        if self.primed {
            self.buf.lock().push(received[0]);
            self.remaining -= 1;
        }
        if !self.primed || self.remaining > 0 {
            self.primed = true;
            vec![CommReq::Recv { chan: self.chan }]
        } else {
            Vec::new()
        }
    }

    fn label(&self) -> String {
        format!("race-sink@{}", self.chan)
    }
}

/// The built-in mutation subject: two sources feed two sinks that merge
/// into one shared buffer. Schedule-DEPENDENT by construction — the
/// explorer must catch it, and the shrinker must reduce the catch to a
/// minimal prefix. This is the harness's own canary, not a gallery
/// design.
pub struct RaceSubject {
    /// Values per source stream.
    pub k: usize,
}

pub const RACE_SINK: &str = "race-sink";

impl DstSubject for RaceSubject {
    fn label(&self) -> String {
        RACE_SINK.into()
    }

    fn run(&self, sched: Option<Box<dyn SchedulePolicy>>) -> Result<Outcome, RunError> {
        let buf = sink_buffer();
        let k = self.k;
        let a: Vec<Value> = (0..k as i64).map(|i| 100 + i).collect();
        let b: Vec<Value> = (0..k as i64).map(|i| 200 + i).collect();
        let (handle, rec) = shared(EventLogRecorder::new());
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        if let Some(s) = sched {
            net.set_schedule_policy(s);
        }
        net.add_recorder(rec);
        net.add(Box::new(ValueSource {
            chan: 0,
            values: a,
            next: 0,
        }));
        net.add(Box::new(ValueSource {
            chan: 1,
            values: b,
            next: 0,
        }));
        net.add(Box::new(RacingSink {
            chan: 0,
            remaining: k,
            primed: false,
            buf: buf.clone(),
        }));
        net.add(Box::new(RacingSink {
            chan: 1,
            remaining: k,
            primed: false,
            buf: buf.clone(),
        }));
        let stats = net.run()?;
        let mut transfers = handle.lock().take_transfers();
        canonicalize_transfers(&mut transfers);
        let merged = buf.lock().clone();
        Ok(Outcome {
            outputs: vec![merged],
            stats,
            transfers,
        })
    }

    fn schedule_stub(&self) -> ScheduleFile {
        ScheduleFile {
            design: RACE_SINK.into(),
            source: None,
            sizes: vec![self.k as i64],
            input_seed: 0,
            policy: "fifo".into(),
            policy_seed: 0,
            reason: None,
            log: ScheduleLog::default(),
        }
    }
}

/// One design of the DST matrix: registry key, problem sizes, input
/// variables, and the seed their data is drawn from.
pub struct DesignSpec {
    pub key: &'static str,
    pub sizes: Vec<i64>,
    pub inputs: Vec<&'static str>,
    pub input_seed: u64,
}

/// The five gallery designs the CI matrix sweeps: the four appendix
/// designs plus the FIR filter on a derived array. Sizes are chosen so a
/// full 64-seed × 3-policy sweep stays in CI's budget.
pub fn registry() -> Vec<DesignSpec> {
    vec![
        DesignSpec {
            key: "D.1",
            sizes: vec![4],
            inputs: vec!["a", "b"],
            input_seed: 17,
        },
        DesignSpec {
            key: "D.2",
            sizes: vec![4],
            inputs: vec!["a", "b"],
            input_seed: 18,
        },
        DesignSpec {
            key: "E.1",
            sizes: vec![3],
            inputs: vec!["a", "b"],
            input_seed: 19,
        },
        DesignSpec {
            key: "E.2",
            sizes: vec![3],
            inputs: vec!["a", "b"],
            input_seed: 20,
        },
        DesignSpec {
            key: "fir",
            sizes: vec![2, 5],
            inputs: vec!["h", "x"],
            input_seed: 21,
        },
    ]
}

/// Resolve a registry key (or [`RACE_SINK`]) to a runnable subject at
/// the given sizes. `"source"` designs carry their own program text and
/// are resolved by the CLI, which owns the front end.
pub fn subject_for(
    key: &str,
    sizes: &[i64],
    input_seed: u64,
) -> Result<Box<dyn DstSubject>, String> {
    use systolic_core::{compile, Options};
    if key == RACE_SINK {
        let k = sizes.first().copied().unwrap_or(4).max(1) as usize;
        return Ok(Box::new(RaceSubject { k }));
    }
    let (plan, inputs): (SystolicProgram, Vec<&str>) = if key == "fir" {
        let p = systolic_ir::gallery::fir_filter();
        let a = systolic_synthesis::derive_array(&p, 2, 4).ok_or("fir array derivation failed")?;
        (
            compile(&p, &a, &Options::default()).map_err(|e| format!("compile failed: {e}"))?,
            vec!["h", "x"],
        )
    } else {
        let (_, p, a) = systolic_synthesis::placement::paper::all()
            .into_iter()
            .find(|(label, _, _)| *label == key)
            .ok_or_else(|| format!("unknown design '{key}'"))?;
        (
            compile(&p, &a, &Options::default()).map_err(|e| format!("compile failed: {e}"))?,
            vec!["a", "b"],
        )
    };
    Ok(Box::new(PlanSubject::from_plan(
        key, None, &plan, sizes, &inputs, input_seed,
    )?))
}

/// The serialized counterexample/replay format (`systolic-schedule-v1`):
/// which subject, which inputs, which policy produced the log, and the
/// (possibly shrunk) per-round decisions to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleFile {
    /// Registry key, [`RACE_SINK`], or `"source"`.
    pub design: String,
    /// Program text when `design == "source"` — the file is then
    /// self-contained.
    pub source: Option<String>,
    pub sizes: Vec<i64>,
    pub input_seed: u64,
    /// The policy whose recorded decisions the log holds.
    pub policy: String,
    pub policy_seed: u64,
    /// Human-readable failure description (diagnostic only; ignored on
    /// parse-for-replay).
    pub reason: Option<String>,
    pub log: ScheduleLog,
}

pub const SCHEDULE_SCHEMA: &str = "systolic-schedule-v1";

fn ids_to_json(xs: &[usize]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x as i64)).collect())
}

fn ids_from_json(j: Option<&Json>) -> Result<Vec<usize>, String> {
    j.and_then(Json::as_arr)
        .map(|xs| {
            xs.iter()
                .map(|x| x.as_i64().map(|n| n as usize).ok_or("non-integer id"))
                .collect::<Result<Vec<_>, _>>()
                .map_err(String::from)
        })
        .unwrap_or_else(|| Ok(Vec::new()))
}

impl ScheduleFile {
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::Str(SCHEDULE_SCHEMA.into())),
            ("design".into(), Json::Str(self.design.clone())),
        ];
        if let Some(src) = &self.source {
            fields.push(("source".into(), Json::Str(src.clone())));
        }
        fields.push((
            "sizes".into(),
            Json::Arr(self.sizes.iter().map(|&s| Json::Num(s)).collect()),
        ));
        fields.push(("input_seed".into(), Json::Num(self.input_seed as i64)));
        fields.push(("policy".into(), Json::Str(self.policy.clone())));
        fields.push(("policy_seed".into(), Json::Num(self.policy_seed as i64)));
        if let Some(r) = &self.reason {
            fields.push(("reason".into(), Json::Str(r.clone())));
        }
        fields.push((
            "rounds".into(),
            Json::Arr(
                self.log
                    .rounds
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("round".into(), Json::Num(r.round as i64)),
                            ("fire".into(), ids_to_json(&r.fire)),
                            ("defer".into(), ids_to_json(&r.defer)),
                            ("ready".into(), ids_to_json(&r.ready)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(fields).to_string()
    }

    pub fn from_json(text: &str) -> Result<ScheduleFile, String> {
        let doc = parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEDULE_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schedule schema '{other}'")),
            None => return Err("missing \"schema\" field".into()),
        }
        let design = doc
            .get("design")
            .and_then(Json::as_str)
            .ok_or("missing \"design\" field")?
            .to_string();
        let source = doc.get("source").and_then(Json::as_str).map(String::from);
        let sizes = doc
            .get("sizes")
            .and_then(Json::as_arr)
            .map(|xs| xs.iter().filter_map(Json::as_i64).collect())
            .unwrap_or_default();
        let input_seed = doc.get("input_seed").and_then(Json::as_i64).unwrap_or(0) as u64;
        let policy = doc
            .get("policy")
            .and_then(Json::as_str)
            .unwrap_or("fifo")
            .to_string();
        let policy_seed = doc.get("policy_seed").and_then(Json::as_i64).unwrap_or(0) as u64;
        let reason = doc.get("reason").and_then(Json::as_str).map(String::from);
        let mut rounds = Vec::new();
        for r in doc.get("rounds").and_then(Json::as_arr).unwrap_or(&[]) {
            rounds.push(ScheduleRound {
                round: r
                    .get("round")
                    .and_then(Json::as_i64)
                    .ok_or("round without number")? as u64,
                fire: ids_from_json(r.get("fire"))?,
                defer: ids_from_json(r.get("defer"))?,
                ready: ids_from_json(r.get("ready"))?,
            });
        }
        Ok(ScheduleFile {
            design,
            source,
            sizes,
            input_seed,
            policy,
            policy_seed,
            reason,
            log: ScheduleLog { rounds },
        })
    }
}

/// Compare a candidate run against the FIFO baseline; `None` means the
/// schedule independence held. The description attributes transfer-level
/// divergence via the recorder stream's first differing transfer.
pub fn compare_outcomes(baseline: &Outcome, candidate: &Outcome) -> Option<String> {
    if baseline == candidate {
        return None;
    }
    let mut parts = Vec::new();
    if baseline.outputs != candidate.outputs {
        let which = baseline
            .outputs
            .iter()
            .zip(&candidate.outputs)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        parts.push(format!("output buffer {which} differs"));
    }
    if baseline.stats != candidate.stats {
        parts.push(format!(
            "stats differ (rounds {}→{}, messages {}→{}, steps {}→{})",
            baseline.stats.rounds,
            candidate.stats.rounds,
            baseline.stats.messages,
            candidate.stats.messages,
            baseline.stats.steps,
            candidate.stats.steps
        ));
    }
    match first_divergence(&baseline.transfers, &candidate.transfers) {
        Some(i) => {
            let describe = |t: Option<&Transfer>| match t {
                Some(t) => format!("round {} chan {} value {}", t.time, t.chan, t.value),
                None => "<absent>".into(),
            };
            parts.push(format!(
                "first transfer divergence at event {i}: baseline {} vs candidate {}",
                describe(baseline.transfers.get(i)),
                describe(candidate.transfers.get(i))
            ));
        }
        None => parts.push("transfer streams agree; divergence is in output assembly".into()),
    }
    Some(parts.join("; "))
}

/// A caught, shrunk schedule-dependence failure.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub subject: String,
    pub policy: String,
    pub seed: u64,
    pub reason: String,
    /// Rounds in the full recorded log.
    pub full_rounds: usize,
    /// The minimal replayable prefix, embedded in the schedule file.
    pub schedule: ScheduleFile,
}

/// Outcome of sweeping one subject.
pub struct ExploreReport {
    pub subject: String,
    /// Schedules exercised (excluding the baseline).
    pub runs: usize,
    pub counterexample: Option<Counterexample>,
}

/// Sweep configuration: which adversary policies, which seeds.
pub struct ExploreConfig {
    pub policies: Vec<&'static str>,
    pub seeds: Vec<u64>,
}

impl ExploreConfig {
    /// The standard matrix: all three adversaries × seeds `0..n`.
    pub fn matrix(n_seeds: u64) -> ExploreConfig {
        ExploreConfig {
            policies: vec!["random", "lifo", "prio-inv"],
            seeds: (0..n_seeds).collect(),
        }
    }
}

/// What one policied run did, relative to the baseline.
fn verdict(
    subject: &dyn DstSubject,
    baseline: &Outcome,
    sched: Box<dyn SchedulePolicy>,
) -> Option<String> {
    match subject.run(Some(sched)) {
        Ok(out) => compare_outcomes(baseline, &out),
        Err(e) => Some(format!("run failed: {e}")),
    }
}

/// Shrink a failing decision log to the shortest prefix that still
/// fails. Linear scan from the empty prefix (pure FIFO — passes by
/// baseline construction), so the first failing length is minimal by
/// construction. Replay is deterministic, so the scan is sound.
pub fn shrink_log(
    subject: &dyn DstSubject,
    baseline: &Outcome,
    full: &ScheduleLog,
) -> (ScheduleLog, String) {
    for k in 0..full.rounds.len() {
        let prefix = ScheduleLog {
            rounds: full.rounds[..k].to_vec(),
        };
        if let Some(reason) = verdict(
            subject,
            baseline,
            Box::new(ReplayPolicy::new(prefix.clone())),
        ) {
            return (prefix, reason);
        }
    }
    let reason = verdict(subject, baseline, Box::new(ReplayPolicy::new(full.clone())))
        .unwrap_or_else(|| "full log no longer reproduces".into());
    (full.clone(), reason)
}

/// Sweep the matrix over one subject. On the first divergence, record,
/// shrink, and return the counterexample; otherwise report the clean
/// sweep.
pub fn explore(subject: &dyn DstSubject, cfg: &ExploreConfig) -> Result<ExploreReport, String> {
    let baseline = subject
        .run(None)
        .map_err(|e| format!("{}: baseline run failed: {e}", subject.label()))?;
    let mut runs = 0usize;
    for policy_name in &cfg.policies {
        for &seed in &cfg.seeds {
            let inner = policy_by_name(policy_name, seed)
                .ok_or_else(|| format!("unknown policy '{policy_name}'"))?;
            let (rec, log) = RecordingPolicy::new(inner);
            runs += 1;
            let failed = match subject.run(Some(Box::new(rec))) {
                Ok(out) => compare_outcomes(&baseline, &out),
                Err(e) => Some(format!("run failed: {e}")),
            };
            if let Some(reason) = failed {
                let full = log.lock().clone();
                let full_rounds = full.rounds.len();
                let (shrunk, min_reason) = shrink_log(subject, &baseline, &full);
                let mut schedule = subject.schedule_stub();
                schedule.policy = policy_name.to_string();
                schedule.policy_seed = seed;
                schedule.reason = Some(min_reason);
                schedule.log = shrunk;
                return Ok(ExploreReport {
                    subject: subject.label(),
                    runs,
                    counterexample: Some(Counterexample {
                        subject: subject.label(),
                        policy: policy_name.to_string(),
                        seed,
                        reason,
                        full_rounds,
                        schedule,
                    }),
                });
            }
        }
    }
    Ok(ExploreReport {
        subject: subject.label(),
        runs,
        counterexample: None,
    })
}

/// Result of replaying a schedule file against its subject.
pub struct ReplayReport {
    /// Did the recorded schedule still diverge from the FIFO baseline?
    pub reproduced: bool,
    /// The divergence (or failure) description, when reproduced.
    pub reason: Option<String>,
    pub rounds_replayed: usize,
}

/// Re-run a subject under a schedule file's decision log and check the
/// divergence reproduces.
pub fn replay(subject: &dyn DstSubject, file: &ScheduleFile) -> Result<ReplayReport, String> {
    let baseline = subject
        .run(None)
        .map_err(|e| format!("baseline run failed: {e}"))?;
    let reason = verdict(
        subject,
        &baseline,
        Box::new(ReplayPolicy::new(file.log.clone())),
    );
    Ok(ReplayReport {
        reproduced: reason.is_some(),
        reason,
        rounds_replayed: file.log.rounds.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_designs_are_schedule_independent_over_a_small_matrix() {
        // The real sweep lives in the `dst_explore` binary (64 seeds);
        // this is the fast in-tree version.
        let cfg = ExploreConfig::matrix(3);
        for spec in registry() {
            let subject = subject_for(spec.key, &spec.sizes, spec.input_seed).unwrap();
            let report = explore(subject.as_ref(), &cfg).unwrap();
            assert!(
                report.counterexample.is_none(),
                "{}: {:?}",
                spec.key,
                report.counterexample.map(|c| c.reason)
            );
            assert_eq!(report.runs, 9, "{}", spec.key);
        }
    }

    #[test]
    fn race_sink_mutation_is_caught_shrunk_and_replayable() {
        // The seeded interleaving bug: the explorer must catch it, the
        // shrinker must cut the log down, and replaying the shrunk file
        // must reproduce the divergence.
        let subject = RaceSubject { k: 8 };
        let report = explore(&subject, &ExploreConfig::matrix(4)).unwrap();
        let ce = report.counterexample.expect("race-sink must be caught");
        let shrunk = ce.schedule.log.rounds.len();
        assert!(shrunk >= 1 && shrunk <= ce.full_rounds);
        let replayed = replay(&subject, &ce.schedule).unwrap();
        assert!(replayed.reproduced, "shrunk schedule must reproduce");
        // Minimality: one round fewer no longer reproduces.
        let mut smaller = ce.schedule.clone();
        smaller.log.rounds.pop();
        let under = replay(&subject, &smaller).unwrap();
        assert!(!under.reproduced, "shrunk log must be a *minimal* prefix");
    }

    #[test]
    fn schedule_files_round_trip_through_json() {
        let subject = RaceSubject { k: 5 };
        let report = explore(&subject, &ExploreConfig::matrix(2)).unwrap();
        let ce = report.counterexample.unwrap();
        let text = ce.schedule.to_json();
        let parsed = ScheduleFile::from_json(&text).unwrap();
        assert_eq!(parsed, ce.schedule);
        // And the parsed file still reproduces.
        let replayed = replay(&subject, &parsed).unwrap();
        assert!(replayed.reproduced);
    }

    #[test]
    fn adversarial_policies_close_the_wavefront_gate_without_changing_results() {
        // The DST policy matrix must also exercise the *engine selection*
        // gate: attaching any non-FIFO policy to `run_plan_batch` under
        // full-auto modes forces the run off both the batched and the
        // wavefront fast paths (the policies permute a per-round worklist
        // that those engines do not have), while the recovered store and
        // the logical statistics stay bit-identical to the wavefront run.
        use systolic_interp::{run_plan_batch, BatchMode, OptMode, WavefrontMode};
        let spec = registry().remove(2); // E.1
        let (_, p, a) = systolic_synthesis::placement::paper::all()
            .into_iter()
            .find(|(label, _, _)| *label == spec.key)
            .unwrap();
        let plan = systolic_core::compile(&p, &a, &systolic_core::Options::default()).unwrap();
        let mut env = Env::new();
        for (&s, &v) in plan.source.sizes.iter().zip(&spec.sizes) {
            env.bind(s, v);
        }
        let mut store = HostStore::allocate(&plan.source, &env);
        for (i, name) in spec.inputs.iter().enumerate() {
            store.fill_random(name, spec.input_seed.wrapping_add(i as u64), -9, 9);
        }
        let run_with = |sched: Option<Box<dyn SchedulePolicy>>| {
            run_plan_batch(
                &plan,
                &env,
                &store,
                ChannelPolicy::Rendezvous,
                &ElabOptions::default(),
                BatchMode::Auto,
                OptMode::Auto,
                WavefrontMode::Auto,
                sched,
                &[],
            )
            .unwrap()
        };
        let fast = run_with(None);
        assert!(fast.wavefront, "E.1 must take the wavefront fast path");
        for name in &crate::policy::POLICY_NAMES[1..] {
            let perturbed = run_with(policy_by_name(name, 7));
            assert!(!perturbed.batched, "{name}: policy must close the gate");
            assert!(!perturbed.wavefront, "{name}: wavefront gate too");
            assert_eq!(
                (perturbed.stats.messages, perturbed.stats.steps),
                (fast.stats.messages, fast.stats.steps),
                "{name}: logical stats must be schedule-invariant"
            );
            assert_eq!(perturbed.store, fast.store, "{name}: stores diverge");
        }
        // And the FIFO anchor keeps the gate open.
        let anchored = run_with(policy_by_name("fifo", 0));
        assert!(anchored.wavefront, "an explicit FIFO policy is inert");
        assert_eq!(anchored.store, fast.store);
    }

    #[test]
    fn subject_for_resolves_the_race_builtin_and_rejects_unknowns() {
        assert_eq!(subject_for(RACE_SINK, &[4], 0).unwrap().label(), RACE_SINK);
        assert!(subject_for("Z.9", &[3], 0).is_err());
    }

    #[test]
    fn replaying_an_empty_log_is_the_baseline() {
        let subject = RaceSubject { k: 4 };
        let stub = subject.schedule_stub();
        let replayed = replay(&subject, &stub).unwrap();
        assert!(!replayed.reproduced, "empty log = FIFO = no divergence");
        assert_eq!(replayed.rounds_replayed, 0);
    }
}
