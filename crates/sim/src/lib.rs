//! # systolic-sim
//!
//! Deterministic-simulation testing for systolized programs: adversarial
//! schedule exploration, fault injection, and shrunk, replayable
//! counterexamples.
//!
//! The property under test is the paper's Sec. 4 schedule-independence
//! theorem: a correctly compiled network computes the same outputs under
//! *every* interleaving that honours channel rendezvous. This crate
//! supplies the machinery to hunt for violations deterministically:
//!
//! - [`policy`] — the adversary policies ([`RandomPolicy`],
//!   [`LifoPolicy`], [`PriorityInversionPolicy`]) plugged into the
//!   cooperative engine's `SchedulePolicy` hook, plus the
//!   [`RecordingPolicy`]/[`ReplayPolicy`] pair that makes any run's
//!   schedule decisions serializable and re-executable;
//! - [`fault`] — bounded rendezvous delays, stalled workers, and process
//!   aborts, each with a precise pass/fail contract;
//! - [`explore`] — the seed-matrix explorer: sweep, detect divergence
//!   via outputs/stats/the recorder's transfer stream, shrink the
//!   decision log to a minimal prefix, and emit a
//!   `systolic-schedule-v1` JSON file that `systolic replay` reproduces;
//! - [`json`] — the tiny hand-rolled JSON reader/writer those files use.
//!
//! The `dst_explore` binary runs the CI matrix (64 seeds × 3 policies ×
//! 5 gallery designs) and writes counterexample artifacts on failure.
//! See `docs/testing.md` for the walkthrough.

pub mod explore;
pub mod fault;
pub mod json;
pub mod policy;

pub use explore::{
    compare_outcomes, explore, registry, replay, shrink_log, subject_for, Counterexample,
    DesignSpec, DstSubject, ExploreConfig, ExploreReport, Outcome, PlanSubject, RaceSubject,
    ReplayReport, ScheduleFile, RACE_SINK, SCHEDULE_SCHEMA,
};
pub use fault::{DelayPolicy, Fault, FaultPlan};
pub use json::Json;
pub use policy::{
    policy_by_name, LifoPolicy, PriorityInversionPolicy, RandomPolicy, RecordingPolicy,
    ReplayPolicy, ScheduleLog, ScheduleRound, POLICY_NAMES,
};
