//! The CI entry point for deterministic schedule exploration: sweep the
//! seed × policy matrix over the five gallery designs and fail loudly —
//! with a replayable counterexample artifact — on any schedule
//! dependence.
//!
//! ```text
//! dst_explore [--seeds N] [--out DIR] [--design KEY]...
//! ```
//!
//! Exit status 0 means every design survived the sweep; 1 means a
//! counterexample was found (written to `DIR/counterexample-<design>.json`,
//! replayable with `systolic replay --schedule <file>`); 2 means bad
//! usage or a setup failure.

use systolic_sim::{explore, registry, subject_for, ExploreConfig};

fn main() {
    let mut seeds: u64 = 64;
    let mut out_dir = String::from("dst-artifacts");
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => usage("--seeds needs a number"),
            },
            "--out" => match args.next() {
                Some(d) => out_dir = d,
                None => usage("--out needs a directory"),
            },
            "--design" => match args.next() {
                Some(k) => only.push(k),
                None => usage("--design needs a key"),
            },
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let cfg = ExploreConfig::matrix(seeds);
    let mut failed = false;
    for spec in registry() {
        if !only.is_empty() && !only.iter().any(|k| k == spec.key) {
            continue;
        }
        let subject = match subject_for(spec.key, &spec.sizes, spec.input_seed) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: setup failed: {e}", spec.key);
                std::process::exit(2);
            }
        };
        let report = match explore(subject.as_ref(), &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", spec.key);
                std::process::exit(2);
            }
        };
        match report.counterexample {
            None => {
                println!(
                    "{}: ok ({} schedules, {} policies x {} seeds)",
                    spec.key,
                    report.runs,
                    cfg.policies.len(),
                    cfg.seeds.len()
                );
            }
            Some(ce) => {
                failed = true;
                if let Err(e) = std::fs::create_dir_all(&out_dir) {
                    eprintln!("cannot create {out_dir}: {e}");
                    std::process::exit(2);
                }
                let path = format!("{out_dir}/counterexample-{}.json", spec.key);
                if let Err(e) = std::fs::write(&path, ce.schedule.to_json()) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!(
                    "{}: FAILED under {}:{} after {} schedules — {}",
                    spec.key, ce.policy, ce.seed, report.runs, ce.reason
                );
                eprintln!(
                    "  shrunk to {} of {} rounds; replay with: systolic replay --schedule {path}",
                    ce.schedule.log.rounds.len(),
                    ce.full_rounds
                );
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: dst_explore [--seeds N] [--out DIR] [--design KEY]...");
    std::process::exit(2);
}
