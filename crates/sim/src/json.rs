//! A minimal JSON reader/writer for schedule files. The workspace policy
//! is hand-rolled JSON everywhere (the observability layer writes its
//! reports the same way); schedule files only need objects, arrays,
//! strings, integers, and booleans, so that is all this parses.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are `i64`: every quantity in a schedule
/// file (rounds, channel ids, seeds) fits, and refusing floats keeps the
/// round-trip exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&systolic_runtime::record::json_escape(s));
                out.push('"');
            }
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&systolic_runtime::record::json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (no insignificant whitespace); `to_string()`
/// comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Parse a JSON document. Errors carry the byte offset where parsing
/// stopped making sense.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(format!("unexpected '{}' at byte {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!(
            "floats are not part of the schedule-file schema (byte {start})"
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<i64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "malformed \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("unknown escape '\\{}'", *c as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut xs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(xs));
    }
    loop {
        xs.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(xs));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_schedule_shaped_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("systolic-schedule-v1".into())),
            ("seed".into(), Json::Num(42)),
            (
                "rounds".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("round".into(), Json::Num(0)),
                    (
                        "fire".into(),
                        Json::Arr(vec![Json::Num(2), Json::Num(0), Json::Num(1)]),
                    ),
                ])]),
            ),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_escapes_and_negatives() {
        let parsed = parse(" { \"a\\n\\\"b\" : [ -7 ,\n true ] } ").unwrap();
        assert_eq!(
            parsed,
            Json::Obj(vec![(
                "a\n\"b".into(),
                Json::Arr(vec![Json::Num(-7), Json::Bool(true)])
            )])
        );
    }

    #[test]
    fn rejects_floats_truncation_and_trailing_junk() {
        assert!(parse("1.5").unwrap_err().contains("floats"));
        assert!(parse("[1,").is_err());
        assert!(parse("{} x").unwrap_err().contains("trailing"));
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_select_by_shape() {
        let doc = parse("{\"k\":3,\"s\":\"v\",\"a\":[1]}").unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }
}
