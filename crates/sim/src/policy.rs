//! The adversarial schedule policies, and the record/replay pair that
//! turns any of them into a serializable, shrinkable decision log.
//!
//! Every policy here is a *pure permutation* of the engine's candidate
//! lists: none defers, so a network that satisfies the paper's
//! schedule-independence theorem (Sec. 4) must produce bit-identical
//! stores **and** bit-identical `RunStats` under all of them. Bounded
//! deferral (the delay fault) lives in [`crate::fault`], where the
//! invariant is weaker: rounds may grow, messages/steps/stores may not.

use std::sync::Arc;
use systolic_runtime::{ChanId, FifoPolicy, Pcg32, SchedulePolicy};

/// PCG stream selectors: the channel-order and process-order decisions of
/// one seed must be decorrelated, so each hook draws from its own stream.
const STREAM_FIRE: u64 = 0x5eed_f17e;
const STREAM_READY: u64 = 0x5eed_4ead;

/// Fisher–Yates-shuffles both candidate lists each round from a seeded
/// PCG pair: the plain adversary of the seed matrix.
pub struct RandomPolicy {
    seed: u64,
    fire_rng: Pcg32,
    ready_rng: Pcg32,
}

impl RandomPolicy {
    pub fn new(seed: u64) -> RandomPolicy {
        RandomPolicy {
            seed,
            fire_rng: Pcg32::new(seed, STREAM_FIRE),
            ready_rng: Pcg32::new(seed, STREAM_READY),
        }
    }
}

impl SchedulePolicy for RandomPolicy {
    fn schedule_round(&mut self, _round: u64, fire: &mut Vec<ChanId>, _defer: &mut Vec<ChanId>) {
        self.fire_rng.shuffle(fire);
    }

    fn order_ready(&mut self, _round: u64, ready: &mut Vec<usize>) {
        self.ready_rng.shuffle(ready);
    }

    fn label(&self) -> String {
        format!("random:{}", self.seed)
    }
}

/// Reverses both candidate lists: the exact mirror of the canonical FIFO
/// order, and the cheapest interleaving that is maximally unlike it.
#[derive(Clone, Copy, Debug, Default)]
pub struct LifoPolicy;

impl SchedulePolicy for LifoPolicy {
    fn schedule_round(&mut self, _round: u64, fire: &mut Vec<ChanId>, _defer: &mut Vec<ChanId>) {
        fire.reverse();
    }

    fn order_ready(&mut self, _round: u64, ready: &mut Vec<usize>) {
        ready.reverse();
    }

    fn label(&self) -> String {
        "lifo".into()
    }
}

/// A structured adversary distinct from both shuffling and mirroring:
/// rotates the firing order by a seed- and round-dependent amount (so the
/// "highest-priority" channel keeps losing its turn) and reverses the
/// ready order. Catches code that accidentally depends on *who goes
/// first* rather than on any particular permutation.
pub struct PriorityInversionPolicy {
    seed: u64,
}

impl PriorityInversionPolicy {
    pub fn new(seed: u64) -> PriorityInversionPolicy {
        PriorityInversionPolicy { seed }
    }
}

impl SchedulePolicy for PriorityInversionPolicy {
    fn schedule_round(&mut self, round: u64, fire: &mut Vec<ChanId>, _defer: &mut Vec<ChanId>) {
        if fire.len() > 1 {
            let k = ((round.wrapping_add(self.seed)) % fire.len() as u64) as usize;
            fire.rotate_left(k);
        }
    }

    fn order_ready(&mut self, _round: u64, ready: &mut Vec<usize>) {
        ready.reverse();
    }

    fn label(&self) -> String {
        format!("prio-inv:{}", self.seed)
    }
}

/// The policy matrix the explorer sweeps; `fifo` is the identity anchor.
pub const POLICY_NAMES: [&str; 4] = ["fifo", "random", "lifo", "prio-inv"];

/// Construct a policy by name. Unknown names return `None` so callers
/// (CLI, schedule files) can diagnose instead of panicking.
pub fn policy_by_name(name: &str, seed: u64) -> Option<Box<dyn SchedulePolicy>> {
    match name {
        "fifo" => Some(Box::new(FifoPolicy)),
        "random" => Some(Box::new(RandomPolicy::new(seed))),
        "lifo" => Some(Box::new(LifoPolicy)),
        "prio-inv" => Some(Box::new(PriorityInversionPolicy::new(seed))),
        _ => None,
    }
}

/// One round's recorded decisions: the exact orders the policy returned.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleRound {
    pub round: u64,
    /// Channel firing order after the policy's permutation.
    pub fire: Vec<ChanId>,
    /// Channels the policy deferred to the next round.
    pub defer: Vec<ChanId>,
    /// Process re-step order after the policy's permutation.
    pub ready: Vec<usize>,
}

/// The complete decision log of one run: replaying it against the same
/// network reproduces the same trajectory (both hooks are pure functions
/// of the candidate list and the round number).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleLog {
    pub rounds: Vec<ScheduleRound>,
}

/// Shared handle to a log still being written by a [`RecordingPolicy`]
/// that the network owns.
pub type SharedLog = Arc<parking_lot::Mutex<ScheduleLog>>;

/// Wraps any policy and records every decision it makes into a shared
/// [`ScheduleLog`] — the raw material for shrinking and replay.
pub struct RecordingPolicy {
    inner: Box<dyn SchedulePolicy>,
    log: SharedLog,
}

impl RecordingPolicy {
    /// Wrap `inner`; the returned handle stays readable after the network
    /// consumes the boxed policy.
    pub fn new(inner: Box<dyn SchedulePolicy>) -> (RecordingPolicy, SharedLog) {
        let log = Arc::new(parking_lot::Mutex::new(ScheduleLog::default()));
        (
            RecordingPolicy {
                inner,
                log: log.clone(),
            },
            log,
        )
    }
}

impl SchedulePolicy for RecordingPolicy {
    fn schedule_round(&mut self, round: u64, fire: &mut Vec<ChanId>, defer: &mut Vec<ChanId>) {
        self.inner.schedule_round(round, fire, defer);
        self.log.lock().rounds.push(ScheduleRound {
            round,
            fire: fire.clone(),
            defer: defer.clone(),
            ready: Vec::new(),
        });
    }

    fn order_ready(&mut self, round: u64, ready: &mut Vec<usize>) {
        self.inner.order_ready(round, ready);
        let mut log = self.log.lock();
        if let Some(r) = log.rounds.iter_mut().rev().find(|r| r.round == round) {
            r.ready = ready.clone();
        }
    }

    fn label(&self) -> String {
        format!("recording({})", self.inner.label())
    }
}

/// Reorder `actual` to follow `recorded`: recorded entries that are
/// present come first in recorded order, everything unrecorded keeps its
/// canonical ascending order after them. Tolerant by construction — a
/// truncated or hand-edited log still yields a legal permutation.
fn apply_order(recorded: &[usize], actual: &mut Vec<usize>) {
    if recorded.is_empty() || actual.is_empty() {
        return;
    }
    // `actual` arrives sorted ascending (engine contract).
    let canonical = std::mem::take(actual);
    let mut used = vec![false; canonical.len()];
    for &r in recorded {
        if let Ok(i) = canonical.binary_search(&r) {
            if !used[i] {
                used[i] = true;
                actual.push(r);
            }
        }
    }
    for (i, &v) in canonical.iter().enumerate() {
        if !used[i] {
            actual.push(v);
        }
    }
}

/// Replays a [`ScheduleLog`]: each round applies the recorded firing
/// order, deferral set, and ready order; past the end of the log (the
/// shrunk case) it degrades to pure FIFO. Replaying a full log recorded
/// from policy P against the same network reproduces P's trajectory
/// decision for decision.
pub struct ReplayPolicy {
    log: ScheduleLog,
    cursor: usize,
}

impl ReplayPolicy {
    pub fn new(log: ScheduleLog) -> ReplayPolicy {
        ReplayPolicy { log, cursor: 0 }
    }

    /// The recorded entry for `round`, if any. Rounds are logged in
    /// increasing order, so a cursor walk suffices.
    fn entry(&mut self, round: u64) -> Option<&ScheduleRound> {
        while self.cursor < self.log.rounds.len() && self.log.rounds[self.cursor].round < round {
            self.cursor += 1;
        }
        match self.log.rounds.get(self.cursor) {
            Some(r) if r.round == round => Some(r),
            _ => None,
        }
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn schedule_round(&mut self, round: u64, fire: &mut Vec<ChanId>, defer: &mut Vec<ChanId>) {
        let Some(entry) = self.entry(round) else {
            return; // beyond the (shrunk) log: FIFO
        };
        let rec_fire = entry.fire.clone();
        let rec_defer = entry.defer.clone();
        if !rec_defer.is_empty() {
            fire.retain(|c| {
                if rec_defer.contains(c) {
                    defer.push(*c);
                    false
                } else {
                    true
                }
            });
        }
        apply_order(&rec_fire, fire);
    }

    fn order_ready(&mut self, round: u64, ready: &mut Vec<usize>) {
        let Some(entry) = self.entry(round) else {
            return;
        };
        let rec = entry.ready.clone();
        apply_order(&rec, ready);
    }

    fn label(&self) -> String {
        format!("replay[{} rounds]", self.log.rounds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_yields_a_permutation() {
        for name in POLICY_NAMES {
            let mut p = policy_by_name(name, 9).unwrap();
            let mut fire: Vec<usize> = (0..17).collect();
            let mut defer = Vec::new();
            p.schedule_round(3, &mut fire, &mut defer);
            fire.extend(defer);
            fire.sort_unstable();
            assert_eq!(fire, (0..17).collect::<Vec<_>>(), "{name} fire");
            let mut ready: Vec<usize> = (0..11).collect();
            p.order_ready(3, &mut ready);
            ready.sort_unstable();
            assert_eq!(ready, (0..11).collect::<Vec<_>>(), "{name} ready");
        }
        assert!(policy_by_name("nope", 0).is_none());
    }

    #[test]
    fn random_policy_is_reproducible_from_its_seed() {
        let run = |seed: u64| {
            let mut p = RandomPolicy::new(seed);
            let mut orders = Vec::new();
            for round in 0..6 {
                let mut fire: Vec<usize> = (0..9).collect();
                let mut defer = Vec::new();
                p.schedule_round(round, &mut fire, &mut defer);
                orders.push(fire);
            }
            orders
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn recording_then_replaying_reproduces_the_orders() {
        let (mut rec, log) = RecordingPolicy::new(Box::new(RandomPolicy::new(77)));
        let mut recorded_orders = Vec::new();
        for round in 0..5 {
            let mut fire: Vec<usize> = (0..8).collect();
            let mut defer = Vec::new();
            rec.schedule_round(round, &mut fire, &mut defer);
            let mut ready: Vec<usize> = (0..4).collect();
            rec.order_ready(round, &mut ready);
            recorded_orders.push((fire, ready));
        }
        let mut replay = ReplayPolicy::new(log.lock().clone());
        for (round, (want_fire, want_ready)) in recorded_orders.iter().enumerate() {
            let mut fire: Vec<usize> = (0..8).collect();
            let mut defer = Vec::new();
            replay.schedule_round(round as u64, &mut fire, &mut defer);
            assert_eq!(&fire, want_fire, "round {round}");
            let mut ready: Vec<usize> = (0..4).collect();
            replay.order_ready(round as u64, &mut ready);
            assert_eq!(&ready, want_ready, "round {round}");
        }
    }

    #[test]
    fn replay_beyond_the_log_is_fifo_and_tolerates_foreign_candidates() {
        let log = ScheduleLog {
            rounds: vec![ScheduleRound {
                round: 0,
                fire: vec![5, 3],
                defer: vec![],
                ready: vec![],
            }],
        };
        let mut replay = ReplayPolicy::new(log);
        // Candidates the log never saw keep ascending order after the
        // recorded prefix.
        let mut fire = vec![1usize, 3, 4, 5];
        let mut defer = Vec::new();
        replay.schedule_round(0, &mut fire, &mut defer);
        assert_eq!(fire, vec![5, 3, 1, 4]);
        // Past the log: identity.
        let mut fire = vec![2usize, 6];
        replay.schedule_round(1, &mut fire, &mut defer);
        assert_eq!(fire, vec![2, 6]);
        assert!(defer.is_empty());
    }

    #[test]
    fn replay_applies_recorded_deferrals() {
        let log = ScheduleLog {
            rounds: vec![ScheduleRound {
                round: 2,
                fire: vec![0],
                defer: vec![7],
                ready: vec![],
            }],
        };
        let mut replay = ReplayPolicy::new(log);
        let mut fire = vec![0usize, 7];
        let mut defer = Vec::new();
        replay.schedule_round(2, &mut fire, &mut defer);
        assert_eq!(fire, vec![0]);
        assert_eq!(defer, vec![7]);
    }
}
