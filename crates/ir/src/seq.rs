//! Sequential reference execution of the source program.
//!
//! "Interpreted as a sequential program, if the step is positive, the loop
//! is executed from the left bound to the right bound; if the step is
//! negative, it is executed from the right bound to the left bound"
//! (Sec. 3.1). The systolic program must be observationally equivalent to
//! this execution; every end-to-end experiment compares against it.

use crate::expr::Value;
use crate::host::HostStore;
use crate::program::SourceProgram;
use systolic_math::Env;

/// Execute the program sequentially in place over the host store.
/// Returns the number of basic-statement instances executed.
pub fn run(program: &SourceProgram, env: &Env, store: &mut HostStore) -> usize {
    let maps: Vec<_> = program
        .streams
        .iter()
        .map(|s| s.index_map.clone())
        .collect();
    let var_names: Vec<String> = program
        .streams
        .iter()
        .map(|s| program.variables[s.variable].name.clone())
        .collect();
    let written = program.body.streams_written();
    let mut locals: Vec<Value> = vec![0; program.streams.len()];
    let mut count = 0;

    for x in program.index_space_seq(env) {
        // Gather the element of each stream selected by its index map.
        for (k, m) in maps.iter().enumerate() {
            let idx = m.apply_int(&x);
            locals[k] = store.get(&var_names[k]).get(&idx);
        }
        program.body.execute(&mut locals, &x);
        // Scatter back the streams the body writes.
        for sid in &written {
            let idx = maps[sid.0].apply_int(&x);
            store.get_mut(&var_names[sid.0]).set(&idx, locals[sid.0]);
        }
        count += 1;
    }
    count
}

/// Run on freshly allocated arrays, with the named inputs filled from
/// seeded pseudo-random data; returns the final store. Convenience wrapper
/// used by tests and benchmarks.
pub fn run_random(program: &SourceProgram, env: &Env, inputs: &[&str], seed: u64) -> HostStore {
    let mut store = HostStore::allocate(program, env);
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    let mut out = store.clone();
    run(program, env, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;
    use crate::host::HostArray;

    #[test]
    fn polynomial_product_matches_direct_convolution() {
        let p = gallery::polynomial_product();
        let n = 4i64;
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let mut store = HostStore::allocate(&p, &env);
        let av: Vec<i64> = vec![1, 2, 3, 4, 5];
        let bv: Vec<i64> = vec![2, -1, 0, 3, 1];
        store.insert("a", HostArray::from_fn(&[(0, n)], |p| av[p[0] as usize]));
        store.insert("b", HostArray::from_fn(&[(0, n)], |p| bv[p[0] as usize]));
        let ops = run(&p, &env, &mut store);
        assert_eq!(ops, 25);
        for k in 0..=2 * n {
            let mut expect = 0;
            for i in 0..=n {
                let j = k - i;
                if (0..=n).contains(&j) {
                    expect += av[i as usize] * bv[j as usize];
                }
            }
            assert_eq!(store.get("c").get(&[k]), expect, "coefficient {k}");
        }
    }

    #[test]
    fn matrix_product_matches_naive() {
        let p = gallery::matrix_product();
        let n = 3i64;
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 1, -4, 4);
        store.fill_random("b", 2, -4, 4);
        let a = store.get("a").clone();
        let b = store.get("b").clone();
        run(&p, &env, &mut store);
        for i in 0..=n {
            for j in 0..=n {
                let mut expect = 0;
                for k in 0..=n {
                    expect += a.get(&[i, k]) * b.get(&[k, j]);
                }
                assert_eq!(store.get("c").get(&[i, j]), expect);
            }
        }
    }

    #[test]
    fn loop_direction_affects_noncommutative_bodies() {
        // s1 := s0 (copy forward): with reversed inner loop the final c
        // differs when the body depends on visit order. Use convolution
        // (commutative) to check it does NOT differ -- a sanity check that
        // direction handling at least runs.
        let mut p = gallery::polynomial_product();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let fwd = run_random(&p, &env, &["a", "b"], 9);
        p.loops[1].step = -1;
        let bwd = run_random(&p, &env, &["a", "b"], 9);
        assert_eq!(fwd.get("c"), bwd.get("c"));
    }
}
