//! The basic statement: the loop body of the source program (Sec. 3.1).
//!
//! The paper's loop body is a guarded-command set
//! `if B_0 -> S_0 [] ... [] B_{t-1} -> S_{t-1} fi` where the guards are
//! boolean functions of the loop indices and the computations refer only to
//! stream elements (global variables indexed by the loop indices) and the
//! indices themselves. We represent it as an ordered list of guarded
//! updates over *stream locals*: when a process executes an instance of the
//! basic statement it holds one scalar per stream (the element selected by
//! the stream's index map), evaluates the updates, and the new values flow
//! onward.

use std::fmt;

/// Identifies a stream by position in the source program's stream list.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub usize);

/// The scalar value type carried by streams. Exact integers keep the
/// reference and systolic executions bit-identical.
pub type Value = i64;

/// Arithmetic over stream locals, loop indices, and constants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScalarExpr {
    /// The current value of a stream's local element.
    Stream(StreamId),
    /// The value of loop index `i` (0 = outermost).
    Index(usize),
    Const(Value),
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Minimum / maximum, useful for dynamic-programming kernels.
    Min(Box<ScalarExpr>, Box<ScalarExpr>),
    Max(Box<ScalarExpr>, Box<ScalarExpr>),
    Neg(Box<ScalarExpr>),
}

/// Boolean guards over the same operands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoolExpr {
    Cmp(CmpOp, ScalarExpr, ScalarExpr),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    Not(Box<BoolExpr>),
    True,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One guarded update `B -> s := e`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GuardedUpdate {
    /// `None` is the unguarded (always-enabled) update.
    pub guard: Option<BoolExpr>,
    /// The stream local assigned.
    pub target: StreamId,
    pub value: ScalarExpr,
}

/// The loop body: an ordered sequence of guarded updates, executed
/// sequentially per instance.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BasicStatement {
    pub updates: Vec<GuardedUpdate>,
}

impl ScalarExpr {
    pub fn eval(&self, locals: &[Value], index: &[i64]) -> Value {
        match self {
            ScalarExpr::Stream(s) => locals[s.0],
            ScalarExpr::Index(i) => index[*i],
            ScalarExpr::Const(c) => *c,
            ScalarExpr::Add(a, b) => a.eval(locals, index) + b.eval(locals, index),
            ScalarExpr::Sub(a, b) => a.eval(locals, index) - b.eval(locals, index),
            ScalarExpr::Mul(a, b) => a.eval(locals, index) * b.eval(locals, index),
            ScalarExpr::Min(a, b) => a.eval(locals, index).min(b.eval(locals, index)),
            ScalarExpr::Max(a, b) => a.eval(locals, index).max(b.eval(locals, index)),
            ScalarExpr::Neg(a) => -a.eval(locals, index),
        }
    }

    /// Streams read by this expression.
    pub fn collect_streams(&self, out: &mut Vec<StreamId>) {
        match self {
            ScalarExpr::Stream(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            ScalarExpr::Index(_) | ScalarExpr::Const(_) => {}
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Min(a, b)
            | ScalarExpr::Max(a, b) => {
                a.collect_streams(out);
                b.collect_streams(out);
            }
            ScalarExpr::Neg(a) => a.collect_streams(out),
        }
    }

    /// Does the expression reference a raw loop index?
    pub fn uses_index(&self) -> bool {
        match self {
            ScalarExpr::Index(_) => true,
            ScalarExpr::Stream(_) | ScalarExpr::Const(_) => false,
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Min(a, b)
            | ScalarExpr::Max(a, b) => a.uses_index() || b.uses_index(),
            ScalarExpr::Neg(a) => a.uses_index(),
        }
    }
}

impl BoolExpr {
    pub fn eval(&self, locals: &[Value], index: &[i64]) -> bool {
        match self {
            BoolExpr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(locals, index), b.eval(locals, index));
                match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                }
            }
            BoolExpr::And(a, b) => a.eval(locals, index) && b.eval(locals, index),
            BoolExpr::Or(a, b) => a.eval(locals, index) || b.eval(locals, index),
            BoolExpr::Not(a) => !a.eval(locals, index),
            BoolExpr::True => true,
        }
    }

    pub fn collect_streams(&self, out: &mut Vec<StreamId>) {
        match self {
            BoolExpr::Cmp(_, a, b) => {
                a.collect_streams(out);
                b.collect_streams(out);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_streams(out);
                b.collect_streams(out);
            }
            BoolExpr::Not(a) => a.collect_streams(out),
            BoolExpr::True => {}
        }
    }
}

impl BasicStatement {
    /// Execute one instance on the stream locals, given the index point.
    pub fn execute(&self, locals: &mut [Value], index: &[i64]) {
        for u in &self.updates {
            let enabled = u.guard.as_ref().is_none_or(|g| g.eval(locals, index));
            if enabled {
                locals[u.target.0] = u.value.eval(locals, index);
            }
        }
    }

    /// Streams read anywhere in the body.
    pub fn streams_read(&self) -> Vec<StreamId> {
        let mut out = Vec::new();
        for u in &self.updates {
            if let Some(g) = &u.guard {
                g.collect_streams(&mut out);
            }
            u.value.collect_streams(&mut out);
        }
        out
    }

    /// Streams written by some update.
    pub fn streams_written(&self) -> Vec<StreamId> {
        let mut out = Vec::new();
        for u in &self.updates {
            if !out.contains(&u.target) {
                out.push(u.target);
            }
        }
        out
    }

    /// Streams accessed (read or written) anywhere.
    pub fn streams_accessed(&self) -> Vec<StreamId> {
        let mut out = self.streams_read();
        for s in self.streams_written() {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out.sort();
        out
    }
}

/// Convenience constructors used throughout tests and the gallery.
pub mod build {
    use super::*;

    pub fn s(id: usize) -> ScalarExpr {
        ScalarExpr::Stream(StreamId(id))
    }

    pub fn idx(i: usize) -> ScalarExpr {
        ScalarExpr::Index(i)
    }

    pub fn c(v: Value) -> ScalarExpr {
        ScalarExpr::Const(v)
    }

    pub fn add(a: ScalarExpr, b: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Add(Box::new(a), Box::new(b))
    }

    pub fn sub(a: ScalarExpr, b: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Sub(Box::new(a), Box::new(b))
    }

    pub fn mul(a: ScalarExpr, b: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Mul(Box::new(a), Box::new(b))
    }

    pub fn max(a: ScalarExpr, b: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Max(Box::new(a), Box::new(b))
    }

    pub fn min(a: ScalarExpr, b: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Min(Box::new(a), Box::new(b))
    }

    pub fn assign(target: usize, value: ScalarExpr) -> GuardedUpdate {
        GuardedUpdate {
            guard: None,
            target: StreamId(target),
            value,
        }
    }

    pub fn guarded(guard: BoolExpr, target: usize, value: ScalarExpr) -> GuardedUpdate {
        GuardedUpdate {
            guard: Some(guard),
            target: StreamId(target),
            value,
        }
    }

    pub fn cmp(op: CmpOp, a: ScalarExpr, b: ScalarExpr) -> BoolExpr {
        BoolExpr::Cmp(op, a, b)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn polyprod_body() {
        // c := c + a * b  (streams: a=0, b=1, c=2)
        let body = BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        };
        let mut locals = [3, 4, 10];
        body.execute(&mut locals, &[0, 0]);
        assert_eq!(locals, [3, 4, 22]);
        assert_eq!(
            body.streams_read(),
            vec![StreamId(2), StreamId(0), StreamId(1)]
        );
        assert_eq!(body.streams_written(), vec![StreamId(2)]);
        assert_eq!(
            body.streams_accessed(),
            vec![StreamId(0), StreamId(1), StreamId(2)]
        );
    }

    #[test]
    fn guarded_update() {
        // if i == 0 -> c := a else skip (streams a=0, c=1)
        let body = BasicStatement {
            updates: vec![guarded(cmp(CmpOp::Eq, idx(0), c(0)), 1, s(0))],
        };
        let mut locals = [7, 0];
        body.execute(&mut locals, &[0, 5]);
        assert_eq!(locals[1], 7);
        let mut locals = [7, 0];
        body.execute(&mut locals, &[1, 5]);
        assert_eq!(locals[1], 0, "guard disabled");
    }

    #[test]
    fn updates_apply_in_order() {
        // s0 := s0 + 1; s1 := s0 (sees the new value)
        let body = BasicStatement {
            updates: vec![assign(0, add(s(0), c(1))), assign(1, s(0))],
        };
        let mut locals = [1, 0];
        body.execute(&mut locals, &[0]);
        assert_eq!(locals, [2, 2]);
    }

    #[test]
    fn index_detection() {
        assert!(add(idx(1), c(2)).uses_index());
        assert!(!add(s(0), c(2)).uses_index());
    }

    #[test]
    fn min_max_eval() {
        let e = max(min(s(0), s(1)), c(0));
        assert_eq!(e.eval(&[-5, 3], &[]), 0);
        assert_eq!(e.eval(&[5, 3], &[]), 3);
    }
}
