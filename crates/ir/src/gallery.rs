//! A gallery of source programs satisfying the paper's restrictions
//! (Appendix A). The first two are the paper's running examples
//! (Appendices D and E); the rest exercise the compiler on further kernels
//! from the same class.

use crate::expr::build::*;
use crate::expr::BasicStatement;
use crate::program::{IndexedVar, Loop, SourceProgram, Stream};
use systolic_math::{Affine, Matrix, Rational, VarTable};

/// Appendix D: polynomial product (degree-`n` convolution).
///
/// ```text
/// int a[0..n], b[0..n], c[0..2n]
/// for i = 0 <- 1 -> n
///   for j = 0 <- 1 -> n
///     c[i+j] := c[i+j] + a[i] * b[j]
/// ```
///
/// Streams: `a[i]` (id 0), `b[j]` (id 1), `c[i+j]` (id 2).
pub fn polynomial_product() -> SourceProgram {
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let zero = Affine::zero();
    let nv = Affine::var(n);
    let two_n = nv.clone().scale(Rational::int(2));
    SourceProgram {
        name: "polynomial_product".into(),
        sizes: vec![n],
        loops: vec![
            Loop {
                index_name: "i".into(),
                lb: zero.clone(),
                rb: nv.clone(),
                step: 1,
            },
            Loop {
                index_name: "j".into(),
                lb: zero.clone(),
                rb: nv.clone(),
                step: 1,
            },
        ],
        variables: vec![
            IndexedVar {
                name: "a".into(),
                bounds: vec![(zero.clone(), nv.clone())],
            },
            IndexedVar {
                name: "b".into(),
                bounds: vec![(zero.clone(), nv.clone())],
            },
            IndexedVar {
                name: "c".into(),
                bounds: vec![(zero.clone(), two_n)],
            },
        ],
        streams: vec![
            Stream {
                variable: 0,
                index_map: Matrix::from_rows(&[vec![1, 0]]),
            },
            Stream {
                variable: 1,
                index_map: Matrix::from_rows(&[vec![0, 1]]),
            },
            Stream {
                variable: 2,
                index_map: Matrix::from_rows(&[vec![1, 1]]),
            },
        ],
        body: BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
        vars,
    }
}

/// Appendix E: matrix–matrix multiplication of `(n+1) x (n+1)` matrices.
///
/// ```text
/// int a[0..n,0..n], b[0..n,0..n], c[0..n,0..n]
/// for i = 0 <- 1 -> n
///   for j = 0 <- 1 -> n
///     for k = 0 <- 1 -> n
///       c[i,j] := c[i,j] + a[i,k] * b[k,j]
/// ```
///
/// Streams: `a[i,k]` (0), `b[k,j]` (1), `c[i,j]` (2).
pub fn matrix_product() -> SourceProgram {
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let zero = Affine::zero();
    let nv = Affine::var(n);
    let sq = |name: &str| IndexedVar {
        name: name.into(),
        bounds: vec![(zero.clone(), nv.clone()), (zero.clone(), nv.clone())],
    };
    SourceProgram {
        name: "matrix_product".into(),
        sizes: vec![n],
        loops: vec![
            Loop {
                index_name: "i".into(),
                lb: zero.clone(),
                rb: nv.clone(),
                step: 1,
            },
            Loop {
                index_name: "j".into(),
                lb: zero.clone(),
                rb: nv.clone(),
                step: 1,
            },
            Loop {
                index_name: "k".into(),
                lb: zero.clone(),
                rb: nv.clone(),
                step: 1,
            },
        ],
        variables: vec![sq("a"), sq("b"), sq("c")],
        streams: vec![
            // M.a = (i, k)
            Stream {
                variable: 0,
                index_map: Matrix::from_rows(&[vec![1, 0, 0], vec![0, 0, 1]]),
            },
            // M.b = (k, j)
            Stream {
                variable: 1,
                index_map: Matrix::from_rows(&[vec![0, 0, 1], vec![0, 1, 0]]),
            },
            // M.c = (i, j)
            Stream {
                variable: 2,
                index_map: Matrix::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]),
            },
        ],
        body: BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
        vars,
    }
}

/// Matrix product with the second operand stored transposed:
/// `c[i,j] += a[i,k] * bT[j,k]`. Same dependence structure as
/// [`matrix_product`] but a different index map for `b`, exercising
/// non-paper stream geometry.
pub fn matrix_product_bt() -> SourceProgram {
    let mut p = matrix_product();
    p.name = "matrix_product_bt".into();
    // M.bT = (j, k)
    p.streams[1].index_map = Matrix::from_rows(&[vec![0, 1, 0], vec![0, 0, 1]]);
    p
}

/// FIR filter / correlation with `n+1` taps over a signal window:
///
/// ```text
/// int h[0..n], x[-n..m], y[0..m]
/// for i = 0 <- 1 -> m       (output sample)
///   for j = 0 <- 1 -> n     (tap)
///     y[i] := y[i] + h[j] * x[i-j]
/// ```
///
/// Two problem-size symbols (`n`, `m`) — exercises multi-parameter bounds.
pub fn fir_filter() -> SourceProgram {
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let m = vars.size("m");
    let zero = Affine::zero();
    let nv = Affine::var(n);
    let mv = Affine::var(m);
    SourceProgram {
        name: "fir_filter".into(),
        sizes: vec![n, m],
        loops: vec![
            Loop {
                index_name: "i".into(),
                lb: zero.clone(),
                rb: mv.clone(),
                step: 1,
            },
            Loop {
                index_name: "j".into(),
                lb: zero.clone(),
                rb: nv.clone(),
                step: 1,
            },
        ],
        variables: vec![
            IndexedVar {
                name: "h".into(),
                bounds: vec![(zero.clone(), nv.clone())],
            },
            IndexedVar {
                name: "x".into(),
                bounds: vec![(-nv.clone(), mv.clone())],
            },
            IndexedVar {
                name: "y".into(),
                bounds: vec![(zero.clone(), mv.clone())],
            },
        ],
        streams: vec![
            // h[j]
            Stream {
                variable: 0,
                index_map: Matrix::from_rows(&[vec![0, 1]]),
            },
            // x[i-j]
            Stream {
                variable: 1,
                index_map: Matrix::from_rows(&[vec![1, -1]]),
            },
            // y[i]
            Stream {
                variable: 2,
                index_map: Matrix::from_rows(&[vec![1, 0]]),
            },
        ],
        body: BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
        vars,
    }
}

/// A depth-4 nest: tensor-times-matrix contraction
///
/// ```text
/// int a[0..n,0..n,0..n], b[0..n,0..n,0..n], c[0..n,0..n,0..n]
/// for i, j, k, l in [0..n]^4:
///   c[i,j,k] := c[i,j,k] + a[i,j,l] * b[l,j,k]
/// ```
///
/// `r = 4` with 3-dimensional variables: exercises the scheme on a
/// three-dimensional process space (the paper's machinery is dimension-
/// generic; its examples stop at r = 3).
pub fn tensor_contraction() -> SourceProgram {
    let mut vars = VarTable::new();
    let n = vars.size("n");
    let zero = Affine::zero();
    let nv = Affine::var(n);
    let cube = |name: &str| IndexedVar {
        name: name.into(),
        bounds: vec![
            (zero.clone(), nv.clone()),
            (zero.clone(), nv.clone()),
            (zero.clone(), nv.clone()),
        ],
    };
    let mk_loop = |name: &str| Loop {
        index_name: name.into(),
        lb: zero.clone(),
        rb: nv.clone(),
        step: 1,
    };
    SourceProgram {
        name: "tensor_contraction".into(),
        sizes: vec![n],
        loops: vec![mk_loop("i"), mk_loop("j"), mk_loop("k"), mk_loop("l")],
        variables: vec![cube("a"), cube("b"), cube("c")],
        streams: vec![
            // M.a = (i, j, l)
            Stream {
                variable: 0,
                index_map: Matrix::from_rows(&[
                    vec![1, 0, 0, 0],
                    vec![0, 1, 0, 0],
                    vec![0, 0, 0, 1],
                ]),
            },
            // M.b = (l, j, k)
            Stream {
                variable: 1,
                index_map: Matrix::from_rows(&[
                    vec![0, 0, 0, 1],
                    vec![0, 1, 0, 0],
                    vec![0, 0, 1, 0],
                ]),
            },
            // M.c = (i, j, k)
            Stream {
                variable: 2,
                index_map: Matrix::from_rows(&[
                    vec![1, 0, 0, 0],
                    vec![0, 1, 0, 0],
                    vec![0, 0, 1, 0],
                ]),
            },
        ],
        body: BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        },
        vars,
    }
}

/// Every gallery program, for sweep-style tests.
pub fn all() -> Vec<SourceProgram> {
    vec![
        polynomial_product(),
        matrix_product(),
        matrix_product_bt(),
        fir_filter(),
        tensor_contraction(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_math::Env;

    #[test]
    fn gallery_programs_have_consistent_shapes() {
        for p in all() {
            let r = p.r();
            assert!(r >= 2);
            for s in &p.streams {
                assert_eq!(s.index_map.cols(), r);
                assert_eq!(s.index_map.rows(), r - 1);
                assert_eq!(s.index_map.rank(), r - 1, "{}: rank", p.name);
            }
            assert_eq!(p.variables.len(), p.streams.len());
        }
    }

    #[test]
    fn fir_filter_runs() {
        let p = fir_filter();
        let mut env = Env::new();
        env.bind(p.sizes[0], 2).bind(p.sizes[1], 5);
        let store = crate::seq::run_random(&p, &env, &["h", "x"], 3);
        // Direct check at one output point.
        let mut fresh = crate::host::HostStore::allocate(&p, &env);
        fresh.fill_random("h", 3, -9, 9);
        fresh.fill_random("x", 4, -9, 9);
        let expect: i64 = (0..=2)
            .map(|j| fresh.get("h").get(&[j]) * fresh.get("x").get(&[3 - j]))
            .sum();
        assert_eq!(store.get("y").get(&[3]), expect);
    }
}
