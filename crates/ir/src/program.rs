//! The source program (Sec. 3.1): a perfect nest of `r` loops over a basic
//! statement, plus the indexed variables and streams it touches.

use crate::expr::{BasicStatement, StreamId};
use systolic_math::{Affine, Env, Matrix, Var, VarTable};

/// One loop `for x_i = lb <- st -> rb` of the nest. `lb`/`rb` are linear
/// expressions in the problem-size symbols; `st` is +1 or -1 and gives the
/// *sequential* execution direction (`+1`: left bound to right bound).
#[derive(Clone, Debug)]
pub struct Loop {
    pub index_name: String,
    pub lb: Affine,
    pub rb: Affine,
    pub step: i64,
}

/// An indexed variable declaration (Sec. 3.1): an `(r-1)`-dimensional array
/// with per-dimension bounds linear in the problem size. Its point set is
/// the variable space `VS.v` of Sec. 5.
#[derive(Clone, Debug)]
pub struct IndexedVar {
    pub name: String,
    /// `(lb, rb)` per dimension, inclusive.
    pub bounds: Vec<(Affine, Affine)>,
}

/// A stream (Sec. 3.1): the pairing of an indexed variable with the index
/// map under which the basic statement accesses it. The map is an
/// `(r-1) x r` integer matrix of rank `r-1`, with no constant part.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Index of the backing [`IndexedVar`] in [`SourceProgram::variables`].
    pub variable: usize,
    pub index_map: Matrix,
}

/// The complete source program.
#[derive(Clone, Debug)]
pub struct SourceProgram {
    pub name: String,
    /// Shared symbol table. Problem-size symbols are interned here; the
    /// compiler later adds process-coordinate symbols.
    pub vars: VarTable,
    /// The problem-size symbols, e.g. `[n]`.
    pub sizes: Vec<Var>,
    /// The loops, outermost first. `r = loops.len()`.
    pub loops: Vec<Loop>,
    pub variables: Vec<IndexedVar>,
    /// Streams; `StreamId(k)` refers to `streams[k]`.
    pub streams: Vec<Stream>,
    pub body: BasicStatement,
}

impl SourceProgram {
    /// The nesting depth `r`.
    pub fn r(&self) -> usize {
        self.loops.len()
    }

    pub fn stream(&self, id: StreamId) -> &Stream {
        &self.streams[id.0]
    }

    /// The display name of a stream (its variable's name).
    pub fn stream_name(&self, id: StreamId) -> &str {
        &self.variables[self.streams[id.0].variable].name
    }

    pub fn stream_ids(&self) -> impl Iterator<Item = StreamId> {
        (0..self.streams.len()).map(StreamId)
    }

    /// Concrete loop bounds under a size binding: `(lb, rb)` per loop.
    pub fn concrete_bounds(&self, env: &Env) -> Vec<(i64, i64)> {
        self.loops
            .iter()
            .map(|l| (l.lb.eval_int(env), l.rb.eval_int(env)))
            .collect()
    }

    /// The number of points in the index space under a size binding.
    pub fn index_space_size(&self, env: &Env) -> usize {
        self.concrete_bounds(env)
            .iter()
            .map(|&(lb, rb)| (rb - lb + 1).max(0) as usize)
            .product()
    }

    /// Iterate the index space in *sequential execution order*: each loop
    /// runs lb→rb when its step is +1 and rb→lb when -1.
    pub fn index_space_seq(&self, env: &Env) -> IndexSpaceIter {
        IndexSpaceIter::new(
            self.concrete_bounds(env),
            self.loops.iter().map(|l| l.step).collect(),
        )
    }

    /// The `2^r` vertices of the (rectangular) index space, symbolically:
    /// each coordinate is either the left or right bound. `selector[i]`
    /// picks the right bound when true.
    pub fn vertex(&self, selector: &[bool]) -> Vec<Affine> {
        assert_eq!(selector.len(), self.r());
        self.loops
            .iter()
            .zip(selector)
            .map(|(l, &hi)| if hi { l.rb.clone() } else { l.lb.clone() })
            .collect()
    }

    /// The variable space `VS.v` bounds for the variable behind a stream.
    pub fn stream_var_bounds(&self, id: StreamId) -> &[(Affine, Affine)] {
        &self.variables[self.streams[id.0].variable].bounds
    }
}

/// The tightest rectangular variable-space bounds covering the image of
/// the index space under an index map: per output row, the interval
/// `[sum_j min(c_j lb_j, c_j rb_j), sum_j max(...)]`, symbolically in the
/// problem sizes. Useful when constructing programs mechanically (the
/// test generators) and when checking a declared variable covers its
/// accesses.
pub fn covering_bounds(index_map: &systolic_math::Matrix, loops: &[Loop]) -> Vec<(Affine, Affine)> {
    assert_eq!(index_map.cols(), loops.len());
    (0..index_map.rows())
        .map(|row| {
            let mut lo = Affine::zero();
            let mut hi = Affine::zero();
            for (j, l) in loops.iter().enumerate() {
                let c = index_map.at(row, j);
                if c.is_zero() {
                    continue;
                }
                let a = l.lb.clone().scale(c);
                let b = l.rb.clone().scale(c);
                if c.signum() > 0 {
                    lo = lo + a;
                    hi = hi + b;
                } else {
                    lo = lo + b;
                    hi = hi + a;
                }
            }
            (lo, hi)
        })
        .collect()
}

/// Row-major walk over a rectangular integer box, honouring per-dimension
/// direction. Outermost dimension varies slowest, exactly like the loop
/// nest.
pub struct IndexSpaceIter {
    bounds: Vec<(i64, i64)>,
    steps: Vec<i64>,
    current: Option<Vec<i64>>,
}

impl IndexSpaceIter {
    fn new(bounds: Vec<(i64, i64)>, steps: Vec<i64>) -> IndexSpaceIter {
        let empty = bounds.iter().any(|&(lb, rb)| lb > rb);
        let current = (!empty).then(|| {
            bounds
                .iter()
                .zip(&steps)
                .map(|(&(lb, rb), &st)| if st > 0 { lb } else { rb })
                .collect()
        });
        IndexSpaceIter {
            bounds,
            steps,
            current,
        }
    }
}

impl Iterator for IndexSpaceIter {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        let cur = self.current.clone()?;
        // Advance like an odometer from the innermost dimension.
        let mut nxt = cur.clone();
        let mut dim = self.bounds.len();
        loop {
            if dim == 0 {
                self.current = None;
                break;
            }
            dim -= 1;
            let (lb, rb) = self.bounds[dim];
            let st = self.steps[dim];
            let stepped = nxt[dim] + st;
            if stepped >= lb && stepped <= rb {
                nxt[dim] = stepped;
                self.current = Some(nxt);
                break;
            }
            nxt[dim] = if st > 0 { lb } else { rb };
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn polyprod_shape() {
        let p = gallery::polynomial_product();
        assert_eq!(p.r(), 2);
        assert_eq!(p.streams.len(), 3);
        assert_eq!(p.stream_name(StreamId(0)), "a");
        assert_eq!(p.stream_name(StreamId(2)), "c");
    }

    #[test]
    fn index_space_enumeration() {
        let p = gallery::polynomial_product();
        let mut env = Env::new();
        env.bind(p.sizes[0], 2);
        let pts: Vec<_> = p.index_space_seq(&env).collect();
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[1], vec![0, 1]);
        assert_eq!(pts[8], vec![2, 2]);
        assert_eq!(p.index_space_size(&env), 9);
    }

    #[test]
    fn negative_step_reverses_a_dimension() {
        let mut p = gallery::polynomial_product();
        p.loops[1].step = -1;
        let mut env = Env::new();
        env.bind(p.sizes[0], 1);
        let pts: Vec<_> = p.index_space_seq(&env).collect();
        assert_eq!(pts, vec![vec![0, 1], vec![0, 0], vec![1, 1], vec![1, 0]]);
    }

    #[test]
    fn empty_index_space() {
        let p = gallery::polynomial_product();
        let mut env = Env::new();
        env.bind(p.sizes[0], -1);
        assert_eq!(p.index_space_seq(&env).count(), 0);
    }

    #[test]
    fn vertices() {
        let p = gallery::polynomial_product();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let v = p.vertex(&[false, true]);
        assert_eq!(v[0].eval_int(&env), 0);
        assert_eq!(v[1].eval_int(&env), 3);
    }
}
