//! The host's view of data (Sec. 4.2): indexed variables living in ordinary
//! arrays. The systolic program's input processes read elements out of the
//! host store and its output processes restore them.

use crate::expr::Value;
use crate::program::SourceProgram;
use std::collections::HashMap;
use systolic_math::Env;

/// A dense integer array with inclusive per-dimension bounds — one indexed
/// variable instantiated at a concrete problem size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostArray {
    lb: Vec<i64>,
    extent: Vec<i64>,
    data: Vec<Value>,
}

impl HostArray {
    /// A zero-filled array with the given inclusive bounds.
    pub fn zeros(bounds: &[(i64, i64)]) -> HostArray {
        let lb: Vec<i64> = bounds.iter().map(|&(l, _)| l).collect();
        let extent: Vec<i64> = bounds.iter().map(|&(l, r)| (r - l + 1).max(0)).collect();
        let len = extent.iter().product::<i64>().max(0) as usize;
        HostArray {
            lb,
            extent,
            data: vec![0; len],
        }
    }

    /// Build from a generator over index points.
    pub fn from_fn(bounds: &[(i64, i64)], mut f: impl FnMut(&[i64]) -> Value) -> HostArray {
        let mut a = HostArray::zeros(bounds);
        for p in a.points() {
            let v = f(&p);
            a.set(&p, v);
        }
        a
    }

    pub fn dims(&self) -> usize {
        self.lb.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn bounds(&self) -> Vec<(i64, i64)> {
        self.lb
            .iter()
            .zip(&self.extent)
            .map(|(&l, &e)| (l, l + e - 1))
            .collect()
    }

    pub fn contains(&self, p: &[i64]) -> bool {
        p.len() == self.lb.len()
            && p.iter()
                .zip(self.lb.iter().zip(&self.extent))
                .all(|(&x, (&l, &e))| x >= l && x < l + e)
    }

    fn offset(&self, p: &[i64]) -> usize {
        assert!(
            self.contains(p),
            "index {p:?} out of bounds {:?}",
            self.bounds()
        );
        let mut off = 0i64;
        for ((&x, &l), &e) in p.iter().zip(&self.lb).zip(&self.extent) {
            off = off * e + (x - l);
        }
        off as usize
    }

    pub fn get(&self, p: &[i64]) -> Value {
        self.data[self.offset(p)]
    }

    /// `get` without the bounds panic; `None` when `p` lies outside the
    /// array.
    pub fn checked_get(&self, p: &[i64]) -> Option<Value> {
        if self.contains(p) {
            Some(self.data[self.offset(p)])
        } else {
            None
        }
    }

    pub fn set(&mut self, p: &[i64], v: Value) {
        let off = self.offset(p);
        self.data[off] = v;
    }

    /// All index points in row-major order.
    pub fn points(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::with_capacity(self.len());
        let dims = self.dims();
        if self.data.is_empty() {
            return out;
        }
        let mut p: Vec<i64> = self.lb.clone();
        loop {
            out.push(p.clone());
            let mut d = dims;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                p[d] += 1;
                if p[d] < self.lb[d] + self.extent[d] {
                    break;
                }
                p[d] = self.lb[d];
            }
        }
    }

    pub fn raw(&self) -> &[Value] {
        &self.data
    }
}

/// The complete host memory: one array per indexed variable, by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostStore {
    arrays: HashMap<String, HostArray>,
}

impl HostStore {
    pub fn new() -> HostStore {
        HostStore::default()
    }

    /// Allocate zero-filled arrays for every variable of a program at the
    /// given problem size.
    pub fn allocate(program: &SourceProgram, env: &Env) -> HostStore {
        let mut store = HostStore::new();
        for v in &program.variables {
            let bounds: Vec<(i64, i64)> = v
                .bounds
                .iter()
                .map(|(lb, rb)| (lb.eval_int(env), rb.eval_int(env)))
                .collect();
            store.insert(&v.name, HostArray::zeros(&bounds));
        }
        store
    }

    pub fn insert(&mut self, name: &str, array: HostArray) {
        self.arrays.insert(name.to_string(), array);
    }

    pub fn get(&self, name: &str) -> &HostArray {
        self.arrays
            .get(name)
            .unwrap_or_else(|| panic!("no host array named {name}"))
    }

    /// `get` without the missing-variable panic.
    pub fn try_get(&self, name: &str) -> Option<&HostArray> {
        self.arrays.get(name)
    }

    pub fn get_mut(&mut self, name: &str) -> &mut HostArray {
        self.arrays
            .get_mut(name)
            .unwrap_or_else(|| panic!("no host array named {name}"))
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.arrays.keys().map(|s| s.as_str())
    }

    /// A content hash of the whole store — names, bounds, and every
    /// value, in sorted-name order so the map's iteration order cannot
    /// leak in. Elaboration bakes input values into source scripts, so
    /// the module cache (`systolic_interp::cache`) keys instantiated
    /// modules by this fingerprint: same plan + sizes + data → same
    /// module, any edit → a distinct key.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut names: Vec<&str> = self.names().collect();
        names.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for name in names {
            let arr = &self.arrays[name];
            name.hash(&mut h);
            arr.bounds().hash(&mut h);
            arr.raw().hash(&mut h);
        }
        h.finish()
    }

    /// Fill an array with uniform pseudo-random values from a seeded LCG —
    /// deterministic workloads for the equivalence experiments.
    pub fn fill_random(&mut self, name: &str, seed: u64, lo: Value, hi: Value) {
        let arr = self.get_mut(name);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let span = (hi - lo + 1).max(1) as u64;
        for p in arr.points() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = lo + ((state >> 33) % span) as i64;
            arr.set(&p, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_roundtrip() {
        let mut a = HostArray::zeros(&[(0, 2), (-1, 1)]);
        assert_eq!(a.len(), 9);
        a.set(&[1, 0], 42);
        assert_eq!(a.get(&[1, 0]), 42);
        assert_eq!(a.get(&[0, -1]), 0);
        assert!(a.contains(&[2, 1]));
        assert!(!a.contains(&[3, 0]));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let a = HostArray::zeros(&[(0, 1)]);
        a.get(&[2]);
    }

    #[test]
    fn points_cover_all() {
        let a = HostArray::zeros(&[(0, 1), (5, 6)]);
        let pts = a.points();
        assert_eq!(pts, vec![vec![0, 5], vec![0, 6], vec![1, 5], vec![1, 6]]);
    }

    #[test]
    fn from_fn_generator() {
        let a = HostArray::from_fn(&[(0, 2)], |p| p[0] * 10);
        assert_eq!(a.raw(), &[0, 10, 20]);
    }

    #[test]
    fn store_allocation_and_random_fill() {
        use crate::gallery;
        let p = gallery::polynomial_product();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let mut store = HostStore::allocate(&p, &env);
        assert_eq!(store.get("a").len(), 4);
        assert_eq!(store.get("c").len(), 7);
        store.fill_random("a", 7, -5, 5);
        assert!(store.get("a").raw().iter().all(|&v| (-5..=5).contains(&v)));
        // Deterministic for equal seeds.
        let mut store2 = HostStore::allocate(&p, &env);
        store2.fill_random("a", 7, -5, 5);
        assert_eq!(store.get("a"), store2.get("a"));
    }

    #[test]
    fn fingerprint_tracks_content_not_insertion_order() {
        let mut s1 = HostStore::new();
        s1.insert("a", HostArray::zeros(&[(0, 3)]));
        s1.insert("b", HostArray::zeros(&[(0, 2)]));
        let mut s2 = HostStore::new();
        s2.insert("b", HostArray::zeros(&[(0, 2)]));
        s2.insert("a", HostArray::zeros(&[(0, 3)]));
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        // Any value edit moves the fingerprint.
        let before = s1.fingerprint();
        s1.get_mut("a").set(&[1], 9);
        assert_ne!(before, s1.fingerprint());
        // So does a bounds change at identical data.
        let mut s3 = HostStore::new();
        s3.insert("a", HostArray::zeros(&[(1, 4)]));
        s3.insert("b", HostArray::zeros(&[(0, 2)]));
        assert_ne!(s2.fingerprint(), s3.fingerprint());
    }
}
