//! # systolic-ir
//!
//! The source-program intermediate representation of the systolizing
//! compiler (Sec. 3.1 of Barnett & Lengauer 1991): perfect loop nests over
//! a guarded basic statement accessing *streams* — indexed variables under
//! linear, constant-free index maps.
//!
//! - [`program`] — loop nests, indexed variables, streams, index-space
//!   iteration;
//! - [`expr`] — the basic-statement expression language and its evaluator;
//! - [`host`] — host-side arrays (the environment the systolic program
//!   loads from and recovers to);
//! - [`seq`] — the sequential reference execution every systolic program
//!   must be equivalent to;
//! - [`validate`] — the requirements & restrictions of Appendix A;
//! - [`gallery`] — the paper's example programs and further kernels.

pub mod expr;
pub mod gallery;
pub mod host;
pub mod program;
pub mod seq;
pub mod validate;

pub use expr::{BasicStatement, BoolExpr, CmpOp, GuardedUpdate, ScalarExpr, StreamId, Value};
pub use host::{HostArray, HostStore};
pub use program::{IndexedVar, Loop, SourceProgram, Stream};
pub use validate::{validate, Violation};
