//! Validation of the paper's requirements and restrictions (Appendix A).
//!
//! "If the source program meets a set of restrictions, then a linear
//! systolic array ... is assured" (Sec. 1). The compiler front end checks
//! the envelope and reports violations instead of mis-compiling.

use crate::program::SourceProgram;
use std::fmt;
use systolic_math::Env;

/// A diagnosed violation of Appendix A.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Requirement: at least two loops.
    TooFewLoops { r: usize },
    /// Requirement: loop steps are +1 or -1.
    BadLoopStep { loop_index: usize, step: i64 },
    /// Requirement: each index map has rank r-1 (full pipelining).
    BadIndexMapRank {
        stream: usize,
        rank: usize,
        expected: usize,
    },
    /// Restriction: each index map is (r-1) x r.
    BadIndexMapShape {
        stream: usize,
        rows: usize,
        cols: usize,
    },
    /// Restriction: each indexed variable is (r-1)-dimensional.
    BadVariableDim {
        variable: usize,
        dims: usize,
        expected: usize,
    },
    /// Restriction: the basic statement accesses all of the streams.
    StreamNotAccessed { stream: usize },
    /// A stream id out of range in the body.
    UnknownStream { stream: usize },
    /// Loop bounds must satisfy lb <= rb (checked at a sample size).
    EmptyLoop { loop_index: usize },
    /// Requirement: each element of an indexed variable is accessed by
    /// some basic statement (checked at a sample size). Index maps whose
    /// rows mix loop indices can map the rectangular index space onto a
    /// non-rectangular region, leaving declared elements untouched.
    ElementsNotCovered {
        stream: usize,
        accessed: usize,
        declared: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooFewLoops { r } => {
                write!(f, "source program has {r} loop(s); at least 2 are required")
            }
            Violation::BadLoopStep { loop_index, step } => {
                write!(f, "loop {loop_index} has step {step}; must be +1 or -1")
            }
            Violation::BadIndexMapRank {
                stream,
                rank,
                expected,
            } => write!(
                f,
                "stream {stream}: index map has rank {rank}, expected {expected} (full pipelining)"
            ),
            Violation::BadIndexMapShape { stream, rows, cols } => write!(
                f,
                "stream {stream}: index map is {rows}x{cols}, expected (r-1) x r"
            ),
            Violation::BadVariableDim {
                variable,
                dims,
                expected,
            } => write!(
                f,
                "variable {variable} is {dims}-dimensional, expected {expected}"
            ),
            Violation::StreamNotAccessed { stream } => write!(
                f,
                "stream {stream} is never accessed by the basic statement"
            ),
            Violation::UnknownStream { stream } => {
                write!(f, "basic statement references unknown stream {stream}")
            }
            Violation::EmptyLoop { loop_index } => {
                write!(
                    f,
                    "loop {loop_index} has lb > rb at the sample problem size"
                )
            }
            Violation::ElementsNotCovered {
                stream,
                accessed,
                declared,
            } => write!(
                f,
                "stream {stream}: only {accessed} of {declared} declared elements are \
                 accessed by the basic statement (requirement A.1)"
            ),
        }
    }
}

/// Check a program against Appendix A. Bounds feasibility (`lb <= rb`) is
/// semi-decidable symbolically, so it is checked at a sample binding with
/// every size symbol set to `sample_size`.
pub fn validate(program: &SourceProgram, sample_size: i64) -> Result<(), Vec<Violation>> {
    let mut out = Vec::new();
    let r = program.r();
    if r < 2 {
        out.push(Violation::TooFewLoops { r });
    }
    for (i, l) in program.loops.iter().enumerate() {
        if l.step != 1 && l.step != -1 {
            out.push(Violation::BadLoopStep {
                loop_index: i,
                step: l.step,
            });
        }
    }
    for (k, s) in program.streams.iter().enumerate() {
        if s.index_map.rows() != r.saturating_sub(1) || s.index_map.cols() != r {
            out.push(Violation::BadIndexMapShape {
                stream: k,
                rows: s.index_map.rows(),
                cols: s.index_map.cols(),
            });
        } else if s.index_map.rank() != r - 1 {
            out.push(Violation::BadIndexMapRank {
                stream: k,
                rank: s.index_map.rank(),
                expected: r - 1,
            });
        }
        let dims = program.variables[s.variable].bounds.len();
        if dims != r.saturating_sub(1) {
            out.push(Violation::BadVariableDim {
                variable: s.variable,
                dims,
                expected: r - 1,
            });
        }
    }
    // Body stream references.
    let accessed = program.body.streams_accessed();
    for sid in &accessed {
        if sid.0 >= program.streams.len() {
            out.push(Violation::UnknownStream { stream: sid.0 });
        }
    }
    for k in 0..program.streams.len() {
        if !accessed.iter().any(|s| s.0 == k) {
            out.push(Violation::StreamNotAccessed { stream: k });
        }
    }
    // Sample-size bound feasibility.
    let mut env = Env::new();
    for &sz in &program.sizes {
        env.bind(sz, sample_size);
    }
    for (i, l) in program.loops.iter().enumerate() {
        if l.lb.eval_rat(&env) > l.rb.eval_rat(&env) {
            out.push(Violation::EmptyLoop { loop_index: i });
        }
    }
    // Requirement A.1 coverage: at the sample size, the index map must
    // touch every declared element (only checkable when shapes are
    // consistent, hence gated on `out` so far being clean for streams).
    if out.is_empty() {
        for (k, s) in program.streams.iter().enumerate() {
            let declared: i64 = program.variables[s.variable]
                .bounds
                .iter()
                .map(|(lb, rb)| (rb.eval_int(&env) - lb.eval_int(&env) + 1).max(0))
                .product();
            let mut touched = std::collections::HashSet::new();
            for x in program.index_space_seq(&env) {
                touched.insert(s.index_map.apply_int(&x));
            }
            if (touched.len() as i64) != declared {
                out.push(Violation::ElementsNotCovered {
                    stream: k,
                    accessed: touched.len(),
                    declared: declared.max(0) as usize,
                });
            }
        }
    }
    if out.is_empty() {
        Ok(())
    } else {
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BasicStatement, StreamId};
    use crate::gallery;

    #[test]
    fn gallery_is_valid() {
        for p in gallery::all() {
            validate(&p, 4).unwrap_or_else(|v| panic!("{}: {v:?}", p.name));
        }
    }

    #[test]
    fn bad_step_detected() {
        let mut p = gallery::polynomial_product();
        p.loops[0].step = 2;
        let errs = validate(&p, 4).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, Violation::BadLoopStep { step: 2, .. })));
    }

    #[test]
    fn single_loop_detected() {
        let mut p = gallery::polynomial_product();
        p.loops.truncate(1);
        let errs = validate(&p, 4).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, Violation::TooFewLoops { r: 1 })));
    }

    #[test]
    fn rank_deficient_index_map_detected() {
        let mut p = gallery::matrix_product();
        // Map (i, i) has rank 1 < 2.
        p.streams[0].index_map = systolic_math::Matrix::from_rows(&[vec![1, 0, 0], vec![1, 0, 0]]);
        let errs = validate(&p, 4).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            Violation::BadIndexMapRank {
                stream: 0,
                rank: 1,
                ..
            }
        )));
    }

    #[test]
    fn unaccessed_stream_detected() {
        let mut p = gallery::polynomial_product();
        p.body = BasicStatement {
            updates: vec![crate::expr::build::assign(2, crate::expr::build::s(2))],
        };
        let errs = validate(&p, 4).unwrap_err();
        assert!(errs.contains(&Violation::StreamNotAccessed { stream: 0 }));
        assert!(errs.contains(&Violation::StreamNotAccessed { stream: 1 }));
        let _ = StreamId(0);
    }

    #[test]
    fn empty_loop_detected() {
        let mut p = gallery::polynomial_product();
        // lb = n, rb = 0: empty for n > 0.
        let n = p.sizes[0];
        p.loops[1].lb = systolic_math::Affine::var(n);
        p.loops[1].rb = systolic_math::Affine::zero();
        let errs = validate(&p, 4).unwrap_err();
        assert!(errs.contains(&Violation::EmptyLoop { loop_index: 1 }));
    }

    #[test]
    fn violations_display() {
        let v = Violation::BadLoopStep {
            loop_index: 0,
            step: 3,
        };
        assert!(v.to_string().contains("step 3"));
    }
}
