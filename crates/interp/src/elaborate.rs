//! Elaboration: instantiate a symbolic [`SystolicProgram`] at a concrete
//! problem size, lowering every virtual process — computation, relay
//! buffer, host source/sink — to the flat [`ProcIR`](ProcIrModule)
//! bytecode shared by all executors and code generators.
//!
//! The construction follows Appendix C's channel discipline — stream `s`
//! has a channel family along its flow, `s_chan[y]` connecting
//! `y - flow.s -> y` — realized as one FIFO pipe per equivalence class of
//! process-space points under translation by the stream's unit flow. Each
//! pipe gets an input process at its upstream end, `d - 1` relay buffers
//! ahead of every process for a flow of denominator `d` (Sec. 7.6,
//! "inserted in between each computation process ... for the sake of
//! regularity" also ahead of the first), and an output process downstream.
//!
//! The result is an immutable [`Arc<ProcIrModule>`]: per-run state lives
//! in the VMs that [`ProcIrModule::instantiate`] builds, so one
//! elaboration can back many runs. The lowering rules (which ops each
//! process shape compiles to) are documented in `docs/process-ir.md`.

use std::fmt;
use std::sync::Arc;
use systolic_core::{StreamKind, SystolicProgram};
use systolic_ir::{BasicStatement, HostStore};
use systolic_math::{point, Env};
use systolic_runtime::{
    ChanId, ComputeBody, MovingLink, OptMode, OptimizedModule, ProcId, ProcIrBuilder, ProcIrModule,
    ProcOp, Value,
};

/// Census of the elaborated network, for reports and experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Census {
    pub computation: usize,
    /// Splitter/merger escort processes (split-propagation protocol).
    pub escorts: usize,
    /// Null processes of `PS \ CS` (external buffers), counted per stream.
    pub external_buffers: usize,
    /// Internal (fractional-flow) relay buffers.
    pub internal_buffers: usize,
    pub inputs: usize,
    pub outputs: usize,
    pub channels: usize,
}

/// Options controlling elaboration (ablation hooks and protocol
/// variants). Part of the module-cache key (`crate::cache`): every
/// variant elaborates a structurally different network.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ElabOptions {
    /// Insert the `d - 1` internal buffers fractional flows require
    /// (Sec. 7.6). Disabling demonstrates the timing effect.
    pub internal_buffers: bool,
    /// Use the *split propagation* protocol: soaking and draining of
    /// moving streams run in per-stream escort processes
    /// (splitter/merger pairs) instead of sequential phases inside the
    /// computation process. The paper's phase protocol "is only one of
    /// many possible choices" (Sec. 4.2) and is not deadlock-free for
    /// every valid design (two streams sharing an index map couple the
    /// phases against the repeater's par-sends — found by fuzzing);
    /// splitting removes the cross-stream coupling.
    pub split_propagation: bool,
    /// Merge the per-pipe i/o processes of each stream into a single host
    /// input and a single host output process, feeding/draining the pipes
    /// in round-robin element order — the optimization the paper defers
    /// ("at a later stage, these may be merged into fewer processes",
    /// Sec. 4.2).
    pub merge_io: bool,
}

impl Default for ElabOptions {
    fn default() -> ElabOptions {
        ElabOptions {
            internal_buffers: true,
            split_propagation: false,
            merge_io: false,
        }
    }
}

/// Elaboration failure: the plan's symbolic stream layout does not
/// instantiate cleanly at this problem size / host store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElabError {
    /// `last_s - first_s` is not a multiple of `increment_s` at a pipe
    /// head: the pipe's element walk does not close.
    MisalignedPipe { stream: String, head: Vec<i64> },
    /// `last_s` precedes `first_s` along `increment_s`.
    ReversedPipe { stream: String, head: Vec<i64> },
    /// A stream names a variable absent from the host store.
    MissingVariable { variable: String },
    /// A pipe element falls outside its variable's array bounds.
    ElementOutOfBounds { variable: String, element: Vec<i64> },
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::MisalignedPipe { stream, head } => write!(
                f,
                "stream {stream}: pipe at {} has ends not aligned with increment_s",
                point::fmt_point(head)
            ),
            ElabError::ReversedPipe { stream, head } => write!(
                f,
                "stream {stream}: pipe at {} has last_s preceding first_s",
                point::fmt_point(head)
            ),
            ElabError::MissingVariable { variable } => {
                write!(f, "no host array named {variable}")
            }
            ElabError::ElementOutOfBounds { variable, element } => write!(
                f,
                "element {} outside the bounds of host array {variable}",
                point::fmt_point(element)
            ),
        }
    }
}

impl std::error::Error for ElabError {}

/// Where an output buffer's values must be restored after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputSpec {
    pub variable: String,
    /// Element identities, in arrival order.
    pub elements: Vec<Vec<i64>>,
    /// Index into [`systolic_runtime::Instance::outputs`].
    pub output: u32,
}

/// The elaborated network: the lowered module plus the host-side maps
/// needed to seed and read back a run.
pub struct Elaborated {
    pub module: Arc<ProcIrModule>,
    pub outputs: Vec<OutputSpec>,
    pub census: Census,
    /// Per (stream index, process-space point): the channel into and out
    /// of the process at that point — the map behind `s_chan[y]`
    /// (Appendix C). Used by the space-time tracer.
    pub endpoints: Vec<(usize, Vec<i64>, ChanId, ChanId)>,
    /// The computation process lowered at each CS point, for consumers
    /// that align plan-derived shapes with the bytecode (`runtime_gen`).
    pub comp_at: Vec<(Vec<i64>, ProcId)>,
}

impl Elaborated {
    /// Run the ProcIR optimizer (`systolic_runtime::opt`) over the
    /// elaborated module: relay-chain fusion into delay rings plus the op
    /// peepholes. `None` when the mode is [`OptMode::Off`] or the module
    /// is left untouched. The optimized module executes only on the
    /// batched engines — feed `chan_caps` to
    /// [`systolic_runtime::analyze_with_caps`] so the surviving channels
    /// get their delay-ring capacities.
    pub fn optimize(&self, mode: OptMode) -> Option<OptimizedModule> {
        if mode == OptMode::Off {
            return None;
        }
        systolic_runtime::optimize(&self.module)
    }
}

/// Adapts the plan's [`BasicStatement`] to the runtime's opaque
/// [`ComputeBody`] (the runtime crate knows nothing about expression
/// trees). Shared with the two-phase elaborator (`crate::skeleton`).
pub(crate) struct BodyAdapter(pub(crate) Arc<BasicStatement>);

impl ComputeBody for BodyAdapter {
    fn execute(&self, locals: &mut [Value], x: &[i64]) {
        self.0.execute(locals, x)
    }
}

pub(crate) struct ChanAlloc(pub(crate) ChanId);

impl ChanAlloc {
    pub(crate) fn next(&mut self) -> ChanId {
        let c = self.0;
        self.0 += 1;
        c
    }
}

/// Row-major index of the PS box, so per-(stream, point) tables are flat
/// vectors rather than point-keyed hash maps (which cost a key clone and
/// a hash per access — measurable at matmul sizes).
pub(crate) struct PsIndex {
    lo: Vec<i64>,
    dims: Vec<usize>,
}

impl PsIndex {
    pub(crate) fn new(ps: &[(i64, i64)]) -> PsIndex {
        PsIndex {
            lo: ps.iter().map(|&(lo, _)| lo).collect(),
            dims: ps
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1).max(0) as usize)
                .collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Offset of a point known to lie inside the box.
    pub(crate) fn at(&self, p: &[i64]) -> usize {
        let mut idx = 0usize;
        for ((&x, &lo), &d) in p.iter().zip(&self.lo).zip(&self.dims) {
            debug_assert!(x >= lo && ((x - lo) as usize) < d);
            idx = idx * d + (x - lo) as usize;
        }
        idx
    }
}

/// Lower `plan` at the problem size bound in `env` to a [`ProcIrModule`],
/// reading initial stream data from `store`.
pub fn elaborate(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    opts: &ElabOptions,
) -> Result<Elaborated, ElabError> {
    let ps = plan.ps_box(env);
    let in_ps = |p: &[i64]| p.iter().zip(&ps).all(|(&x, &(lo, hi))| x >= lo && x <= hi);
    let ps_points = plan.ps_points(env);
    let psidx = PsIndex::new(&ps);
    let n_streams = plan.streams.iter().map(|s| s.id.0 + 1).max().unwrap_or(0);
    // One scratch environment for every per-point query below; each
    // `bind_coords` overwrites the previous point's coordinates.
    let mut env_y = env.clone();
    // The basic statement is identical at every computation process, so
    // the straight-line kernel compiles once per module; a rejection is
    // recorded, not fatal (the scalar macro path still runs the body).
    let body: Arc<dyn ComputeBody> = Arc::new(BodyAdapter(Arc::new(plan.source.body.clone())));
    let (kernel, kernel_reject) = match crate::kernelize::kernelize(&plan.source.body) {
        Ok(k) => (Some(Arc::new(k)), None),
        Err(why) => (None, Some(why)),
    };

    let mut chans = ChanAlloc(0);
    let mut b = ProcIrBuilder::new();
    let mut outputs = Vec::new();
    let mut census = Census::default();
    // [stream][PS offset] -> (in_chan, out_chan); every in-PS point of
    // every stream lies on exactly one pipe chain, so both tables are
    // fully populated by the pipe walks below.
    let mut endpoint: Vec<Vec<(ChanId, ChanId)>> =
        vec![vec![(ChanId::MAX, ChanId::MAX); psidx.len()]; n_streams];
    // [stream][PS offset] -> pipe element count
    let mut pipe_n: Vec<Vec<i64>> = vec![vec![0; psidx.len()]; n_streams];

    struct PipeIo {
        entry: ChanId,
        exit: ChanId,
        head: Vec<i64>,
        tail: Vec<i64>,
        values: Vec<i64>,
        elements: Vec<Vec<i64>>,
    }

    for sp in &plan.streams {
        let u = &sp.unit_flow;
        let relays = if opts.internal_buffers {
            sp.denominator - 1
        } else {
            0
        };
        let var = store
            .try_get(&sp.name)
            .ok_or_else(|| ElabError::MissingVariable {
                variable: sp.name.clone(),
            })?;
        let mut pipe_ios: Vec<PipeIo> = Vec::new();
        for head in &ps_points {
            if in_ps(&point::sub(head, u)) {
                continue; // not the upstream end of a pipe
            }
            // Walk the chain.
            let mut chain = Vec::new();
            let mut z = head.clone();
            while in_ps(&z) {
                chain.push(z.clone());
                z = point::add(&z, u);
            }
            // Pipe contents from first_s / last_s at the head.
            plan.bind_coords(&mut env_y, head);
            let first_s = SystolicProgram::stream_point_bound(&sp.first_s, &env_y);
            let last_s = SystolicProgram::stream_point_bound(&sp.last_s, &env_y);
            let (elements, n) = match (first_s, last_s) {
                (Some(f), Some(l)) => {
                    let k = point::exact_div(&point::sub(&l, &f), &sp.increment_s).ok_or_else(
                        || ElabError::MisalignedPipe {
                            stream: sp.name.clone(),
                            head: head.clone(),
                        },
                    )?;
                    if k < 0 {
                        return Err(ElabError::ReversedPipe {
                            stream: sp.name.clone(),
                            head: head.clone(),
                        });
                    }
                    let elems: Vec<Vec<i64>> = (0..=k)
                        .map(|t| point::add(&f, &point::scale(t, &sp.increment_s)))
                        .collect();
                    let n = elems.len() as i64;
                    (elems, n)
                }
                _ => (Vec::new(), 0),
            };
            for z in &chain {
                pipe_n[sp.id.0][psidx.at(z)] = n;
            }

            // Pipe entry channel and chain with relays ahead of every
            // process.
            let entry = chans.next();
            let mut prev = entry;
            for z in &chain {
                for r in 0..relays {
                    let nxt = chans.next();
                    b.relay(
                        prev,
                        nxt,
                        n.max(0) as usize,
                        format!("buf{r}:{}@{}", sp.name, point::fmt_point(z)),
                    );
                    census.internal_buffers += 1;
                    prev = nxt;
                }
                let out = chans.next();
                endpoint[sp.id.0][psidx.at(z)] = (prev, out);
                prev = out;
            }
            let values = elements
                .iter()
                .map(|e| {
                    var.checked_get(e)
                        .ok_or_else(|| ElabError::ElementOutOfBounds {
                            variable: sp.name.clone(),
                            element: e.clone(),
                        })
                })
                .collect::<Result<Vec<i64>, ElabError>>()?;
            pipe_ios.push(PipeIo {
                entry,
                exit: prev,
                head: head.clone(),
                tail: chain.last().unwrap().clone(),
                values,
                elements,
            });
        }

        // Emit i/o processes: one per pipe (the paper's abstract layout)
        // or merged per stream (the deferred optimization).
        if opts.merge_io {
            let max_len = pipe_ios.iter().map(|p| p.values.len()).max().unwrap_or(0);
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            let mut merged_elems = Vec::new();
            for t in 0..max_len {
                for p in &pipe_ios {
                    if t < p.values.len() {
                        sends.push((p.entry, p.values[t]));
                        recvs.push(p.exit);
                        merged_elems.push(p.elements[t].clone());
                    }
                }
            }
            b.scripted_source(&sends, format!("in:{}", sp.name));
            let (_, out) = b.scripted_sink(&recvs, format!("out:{}", sp.name));
            census.inputs += 1;
            census.outputs += 1;
            outputs.push(OutputSpec {
                variable: sp.name.clone(),
                elements: merged_elems,
                output: out,
            });
        } else {
            for p in pipe_ios {
                b.source(
                    p.entry,
                    &p.values,
                    format!("in:{}@{}", sp.name, point::fmt_point(&p.head)),
                );
                census.inputs += 1;
                let (_, out) = b.sink(
                    p.exit,
                    p.elements.len(),
                    format!("out:{}@{}", sp.name, point::fmt_point(&p.tail)),
                );
                census.outputs += 1;
                outputs.push(OutputSpec {
                    variable: sp.name.clone(),
                    elements: p.elements,
                    output: out,
                });
            }
        }
    }

    // Processes at every PS point. The sweep asks the same symbolic
    // questions at each of them, so the schedule quantities are partially
    // evaluated at the bound problem size once up front and each point
    // costs only integer arithmetic (`SystolicProgram::specialize`).
    let spec = plan.specialize(env);
    let mut comp_at = Vec::new();
    for y in &ps_points {
        let yi = psidx.at(y);
        if let Some(first) = spec.first_at(y) {
            // Computation process: the canonical load / soak / repeater /
            // drain / recover shape of Appendix C–E.
            let count = spec.count_at(y);
            // Pre-pass over the moving streams: split propagation's escort
            // relays are separate processes and lower before the
            // computation process opens; the paper protocol's soaks are
            // ops queued for it.
            let mut moving: Vec<MovingLink> = Vec::new();
            let mut soaks: Vec<ProcOp> = Vec::new();
            for sp in &plan.streams {
                if sp.kind == StreamKind::Moving {
                    let (ic, oc) = endpoint[sp.id.0][yi];
                    let soak = spec.streams[sp.id.0].soak.at(y);
                    let drain = spec.streams[sp.id.0].drain.at(y);
                    if opts.split_propagation {
                        let cs = chans.next(); // splitter -> comp
                        let cm = chans.next(); // comp -> merger
                        let sm = chans.next(); // splitter -> merger
                        b.segment_relay(
                            &[
                                (ic, sm, soak.max(0) as usize),
                                (ic, cs, count.max(0) as usize),
                                (ic, sm, drain.max(0) as usize),
                            ],
                            format!("split:{}@{}", sp.name, point::fmt_point(y)),
                        );
                        b.segment_relay(
                            &[
                                (sm, oc, soak.max(0) as usize),
                                (cm, oc, count.max(0) as usize),
                                (sm, oc, drain.max(0) as usize),
                            ],
                            format!("merge:{}@{}", sp.name, point::fmt_point(y)),
                        );
                        census.escorts += 2;
                        moving.push(MovingLink {
                            slot: sp.id.0 as u32,
                            inp: cs,
                            out: cm,
                        });
                    } else {
                        soaks.push(ProcOp::Pass {
                            inp: ic,
                            out: oc,
                            n: soak.max(0) as u64,
                        });
                        moving.push(MovingLink {
                            slot: sp.id.0 as u32,
                            inp: ic,
                            out: oc,
                        });
                    }
                }
            }
            b.begin(format!("comp@{}", point::fmt_point(y)));
            // Loads.
            for sp in &plan.streams {
                if let StreamKind::Stationary { .. } = sp.kind {
                    let (ic, oc) = endpoint[sp.id.0][yi];
                    let drain = spec.streams[sp.id.0].drain.at(y);
                    b.op(ProcOp::Keep {
                        chan: ic,
                        slot: sp.id.0 as u32,
                    });
                    b.op(ProcOp::Pass {
                        inp: ic,
                        out: oc,
                        n: drain.max(0) as u64,
                    });
                }
            }
            // Soaks (paper protocol; escorts already handle them under
            // split propagation).
            for op in &soaks {
                b.op(*op);
            }
            b.op(ProcOp::Compute {
                count: count.max(0) as u64,
            });
            // Drains (paper protocol only; escorts already handle them).
            if !opts.split_propagation {
                for sp in &plan.streams {
                    if sp.kind == StreamKind::Moving {
                        let (ic, oc) = endpoint[sp.id.0][yi];
                        let drain = spec.streams[sp.id.0].drain.at(y);
                        b.op(ProcOp::Pass {
                            inp: ic,
                            out: oc,
                            n: drain.max(0) as u64,
                        });
                    }
                }
            }
            // Recoveries.
            for sp in &plan.streams {
                if let StreamKind::Stationary { .. } = sp.kind {
                    let (ic, oc) = endpoint[sp.id.0][yi];
                    let soak = spec.streams[sp.id.0].soak.at(y);
                    b.op(ProcOp::Pass {
                        inp: ic,
                        out: oc,
                        n: soak.max(0) as u64,
                    });
                    b.op(ProcOp::Eject {
                        chan: oc,
                        slot: sp.id.0 as u32,
                    });
                }
            }
            b.repeater(&moving, &first, &plan.increment, plan.streams.len() as u32);
            let pid = b.finish();
            comp_at.push((y.clone(), pid));
            census.computation += 1;
        } else {
            // Null process: external buffer, one relay per stream
            // (the paper composes the passes in `par`; independent relay
            // processes are the same composition).
            for sp in &plan.streams {
                let (ic, oc) = endpoint[sp.id.0][yi];
                let n = pipe_n[sp.id.0][yi];
                b.relay(
                    ic,
                    oc,
                    n.max(0) as usize,
                    format!("extbuf:{}@{}", sp.name, point::fmt_point(y)),
                );
                census.external_buffers += 1;
            }
        }
    }

    census.channels = chans.0;
    let endpoints = plan
        .streams
        .iter()
        .flat_map(|sp| {
            let row = &endpoint[sp.id.0];
            let psidx = &psidx;
            ps_points.iter().map(move |y| {
                let (ic, oc) = row[psidx.at(y)];
                (sp.id.0, y.clone(), ic, oc)
            })
        })
        .collect();
    b.set_kernel(kernel, kernel_reject);
    let module = b.build(Some(body));
    Ok(Elaborated {
        module,
        outputs,
        census,
        endpoints,
        comp_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    fn plan_of(
        pair: (
            systolic_ir::SourceProgram,
            systolic_synthesis::SystolicArray,
        ),
    ) -> SystolicProgram {
        let (p, a) = pair;
        compile(&p, &a, &Options::default()).unwrap()
    }

    #[test]
    fn d1_census() {
        let plan = plan_of(paper::polyprod_d1());
        let n = 4i64;
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], n);
        let store = HostStore::allocate(&plan.source, &env);
        let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        // n+1 computation processes; 3 pipes (one per stream, 1-D);
        // b has denominator 2 -> one internal buffer per column.
        assert_eq!(el.census.computation, (n + 1) as usize);
        assert_eq!(el.census.inputs, 3);
        assert_eq!(el.census.outputs, 3);
        assert_eq!(el.census.internal_buffers, (n + 1) as usize);
        assert_eq!(el.census.external_buffers, 0, "CS = PS for simple place");
    }

    #[test]
    fn e2_census_has_external_buffers() {
        let plan = plan_of(paper::matmul_e2());
        let n = 2i64;
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], n);
        let store = HostStore::allocate(&plan.source, &env);
        let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        let side = 2 * n + 1;
        let ps = (side * side) as usize;
        // CS: |col - row| <= n band.
        let cs: usize = (0..side * side)
            .map(|i| (i / side - n, i % side - n))
            .filter(|&(c, r)| (c - r).abs() <= n)
            .count();
        assert_eq!(el.census.computation, cs);
        assert_eq!(el.census.external_buffers, (ps - cs) * 3);
        assert_eq!(el.census.internal_buffers, 0);
        // Pipes: a and b have 2n+1 each (vertical / horizontal), c has
        // one per anti-diagonal line of the box = 2*(2n+1) - 1.
        let expect_pipes = (side + side + (2 * side - 1)) as usize;
        assert_eq!(el.census.inputs, expect_pipes);
        assert_eq!(el.census.outputs, expect_pipes);
    }

    #[test]
    fn census_invariants() {
        // inputs == outputs (one source and one sink per pipe), and the
        // endpoints cover exactly PS x streams.
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let mut env = Env::new();
            env.bind(plan.source.sizes[0], 3);
            let store = HostStore::allocate(&plan.source, &env);
            let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
            assert_eq!(el.census.inputs, el.census.outputs, "{label}");
            let ps_count = plan.ps_points(&env).len();
            assert_eq!(
                el.endpoints.len(),
                ps_count * plan.streams.len(),
                "{label}: every (stream, PS point) has channel endpoints"
            );
            // Channel ids are unique across endpoints per side.
            let mut ins: Vec<_> = el.endpoints.iter().map(|(_, _, i, _)| *i).collect();
            ins.sort_unstable();
            ins.dedup();
            assert_eq!(ins.len(), el.endpoints.len(), "{label}: in-channels unique");
            // Total processes = comp + null buffers + internal buffers
            // + escorts + inputs + outputs.
            assert_eq!(
                el.module.procs.len(),
                el.census.computation
                    + el.census.external_buffers
                    + el.census.internal_buffers
                    + el.census.escorts
                    + el.census.inputs
                    + el.census.outputs,
                "{label}"
            );
            // Every comp point's bytecode ends in exactly one Compute op.
            for (y, pid) in &el.comp_at {
                let computes = el
                    .module
                    .ops_of(*pid)
                    .iter()
                    .filter(|op| matches!(op, ProcOp::Compute { .. }))
                    .count();
                assert_eq!(computes, 1, "{label}: comp at {y:?}");
            }
        }
    }

    #[test]
    fn missing_variable_is_a_structured_error() {
        let plan = plan_of(paper::polyprod_d1());
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], 2);
        let store = HostStore::new(); // nothing allocated
        let Err(err) = elaborate(&plan, &env, &store, &ElabOptions::default()) else {
            panic!("elaboration must fail without host arrays");
        };
        assert!(matches!(err, ElabError::MissingVariable { .. }));
        assert!(err.to_string().contains("no host array"));
    }

    #[test]
    fn pipe_conservation_invariant() {
        // soak + count + drain = pipe N for every computation process and
        // moving stream (the FIFO conservation law).
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let mut env = Env::new();
            env.bind(plan.source.sizes[0], 3);
            for y in plan.ps_points(&env) {
                let Some(_) = plan.first_at(&env, &y) else {
                    continue;
                };
                let count = plan.count_at(&env, &y);
                for sp in &plan.streams {
                    let soak = plan.stream_count_at(&sp.soak, &env, &y);
                    let drain = plan.stream_count_at(&sp.drain, &env, &y);
                    // Walk to the pipe head to get N.
                    let mut head = y.clone();
                    let ps = plan.ps_box(&env);
                    let inside =
                        |p: &Vec<i64>| p.iter().zip(&ps).all(|(&x, &(lo, hi))| x >= lo && x <= hi);
                    loop {
                        let prev = point::sub(&head, &sp.unit_flow);
                        if !inside(&prev) {
                            break;
                        }
                        head = prev;
                    }
                    let f = plan.stream_point_at(&sp.first_s, &env, &head);
                    let l = plan.stream_point_at(&sp.last_s, &env, &head);
                    let n = match (f, l) {
                        (Some(f), Some(l)) => {
                            point::exact_div(&point::sub(&l, &f), &sp.increment_s).unwrap() + 1
                        }
                        _ => 0,
                    };
                    let used = match sp.kind {
                        StreamKind::Moving => count,
                        StreamKind::Stationary { .. } => 1,
                    };
                    assert_eq!(
                        soak + used + drain,
                        n,
                        "{label}: stream {} at {:?}",
                        sp.name,
                        y
                    );
                }
            }
        }
    }
}
