//! Compile a plan's [`BasicStatement`] into the runtime's straight-line
//! [`Kernel`] tape (see `docs/kernels.md`).
//!
//! The basic statement is a sequence of unguarded updates
//! `s := e` executed in order, later updates seeing earlier writes. The
//! kernel is an SSA tape — op `i` defines register `i` — so sequential
//! semantics compile to a *current-register* map: a `Stream(s)` read
//! resolves to whatever register last wrote slot `s` (or a fresh
//! [`KernelOp::Slot`] load on first touch), and each update rebinds its
//! target slot to the register holding the computed value. The final map
//! restricted to written slots becomes the kernel's write-back list.
//!
//! Guarded updates are rejected: a data-dependent guard makes the body
//! control-divergent across lanes, which the struct-of-arrays batch
//! executor does not mask. Rejection is not an error — the module simply
//! runs on the scalar `macro_step` path, and the reason is surfaced in
//! the `kernels` metrics section.

use std::collections::HashMap;
use systolic_ir::{BasicStatement, ScalarExpr};
use systolic_runtime::{Kernel, KernelOp};

/// Upper bound on tape length. The gallery's bodies are 1–4 ops; a tape
/// past this size signals a degenerate expression tree where the
/// straight-line copy would bloat the per-wave register file.
pub const KERNEL_MAX_OPS: usize = 256;

/// Compile `body` to a [`Kernel`], or explain why it cannot run on the
/// vectorized wave path.
pub fn kernelize(body: &BasicStatement) -> Result<Kernel, String> {
    if body.updates.is_empty() {
        return Err("empty compute body".to_string());
    }
    let mut ops: Vec<KernelOp> = Vec::new();
    // slot -> register currently holding its value.
    let mut cur: HashMap<usize, u32> = HashMap::new();
    // Written slots in first-write order, for a stable write-back list.
    let mut written: Vec<usize> = Vec::new();
    let mut n_slots = 0usize;
    let mut n_dims = 0usize;

    for u in &body.updates {
        if u.guard.is_some() {
            return Err("guarded update (data-dependent control)".to_string());
        }
        let r = compile_expr(
            &u.value,
            &mut ops,
            &mut cur,
            &mut n_slots,
            &mut n_dims,
        )?;
        let t = u.target.0;
        n_slots = n_slots.max(t + 1);
        cur.insert(t, r);
        if !written.contains(&t) {
            written.push(t);
        }
    }

    let writes = written
        .iter()
        .map(|&s| (s as u32, cur[&s]))
        .collect();
    Ok(Kernel {
        ops,
        writes,
        n_slots: n_slots as u32,
        n_dims: n_dims as u32,
    })
}

fn compile_expr(
    e: &ScalarExpr,
    ops: &mut Vec<KernelOp>,
    cur: &mut HashMap<usize, u32>,
    n_slots: &mut usize,
    n_dims: &mut usize,
) -> Result<u32, String> {
    if ops.len() >= KERNEL_MAX_OPS {
        return Err(format!("compute body exceeds {KERNEL_MAX_OPS} kernel ops"));
    }
    let emit = |ops: &mut Vec<KernelOp>, op: KernelOp| -> u32 {
        ops.push(op);
        (ops.len() - 1) as u32
    };
    Ok(match e {
        ScalarExpr::Stream(s) => {
            if let Some(&r) = cur.get(&s.0) {
                r
            } else {
                *n_slots = (*n_slots).max(s.0 + 1);
                let r = emit(ops, KernelOp::Slot(s.0 as u32));
                cur.insert(s.0, r);
                r
            }
        }
        ScalarExpr::Index(i) => {
            *n_dims = (*n_dims).max(*i + 1);
            emit(ops, KernelOp::Index(*i as u32))
        }
        ScalarExpr::Const(c) => emit(ops, KernelOp::Const(*c)),
        ScalarExpr::Add(a, b) => {
            let (ra, rb) = (
                compile_expr(a, ops, cur, n_slots, n_dims)?,
                compile_expr(b, ops, cur, n_slots, n_dims)?,
            );
            emit(ops, KernelOp::Add(ra, rb))
        }
        ScalarExpr::Sub(a, b) => {
            let (ra, rb) = (
                compile_expr(a, ops, cur, n_slots, n_dims)?,
                compile_expr(b, ops, cur, n_slots, n_dims)?,
            );
            emit(ops, KernelOp::Sub(ra, rb))
        }
        ScalarExpr::Mul(a, b) => {
            let (ra, rb) = (
                compile_expr(a, ops, cur, n_slots, n_dims)?,
                compile_expr(b, ops, cur, n_slots, n_dims)?,
            );
            emit(ops, KernelOp::Mul(ra, rb))
        }
        ScalarExpr::Min(a, b) => {
            let (ra, rb) = (
                compile_expr(a, ops, cur, n_slots, n_dims)?,
                compile_expr(b, ops, cur, n_slots, n_dims)?,
            );
            emit(ops, KernelOp::Min(ra, rb))
        }
        ScalarExpr::Max(a, b) => {
            let (ra, rb) = (
                compile_expr(a, ops, cur, n_slots, n_dims)?,
                compile_expr(b, ops, cur, n_slots, n_dims)?,
            );
            emit(ops, KernelOp::Max(ra, rb))
        }
        ScalarExpr::Neg(a) => {
            let ra = compile_expr(a, ops, cur, n_slots, n_dims)?;
            emit(ops, KernelOp::Neg(ra))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ir::{BoolExpr, CmpOp, GuardedUpdate, StreamId};

    fn s(i: usize) -> ScalarExpr {
        ScalarExpr::Stream(StreamId(i))
    }

    fn upd(target: usize, value: ScalarExpr) -> GuardedUpdate {
        GuardedUpdate {
            guard: None,
            target: StreamId(target),
            value,
        }
    }

    /// The matmul body `c := c + a * b` and a second update reading the
    /// first's result: the kernel must match the sequential interpreter.
    #[test]
    fn kernel_matches_the_basic_statement_interpreter() {
        let body = BasicStatement {
            updates: vec![
                upd(
                    2,
                    ScalarExpr::Add(
                        Box::new(s(2)),
                        Box::new(ScalarExpr::Mul(Box::new(s(0)), Box::new(s(1)))),
                    ),
                ),
                upd(0, ScalarExpr::Sub(Box::new(s(2)), Box::new(s(0)))),
            ],
        };
        let kernel = kernelize(&body).unwrap();
        assert_eq!(kernel.n_slots, 3);
        assert_eq!(kernel.n_dims, 0);

        let mut via_kernel = [3i64, 5, 7];
        let mut via_interp = via_kernel;
        kernel.execute_scalar(&mut via_kernel, &[]);
        body.execute(&mut via_interp, &[]);
        assert_eq!(via_kernel, via_interp);
        assert_eq!(via_kernel, [19, 5, 22]);
    }

    #[test]
    fn slot_loads_are_shared_and_index_rank_is_tracked() {
        let body = BasicStatement {
            updates: vec![upd(
                1,
                ScalarExpr::Add(
                    Box::new(ScalarExpr::Mul(Box::new(s(0)), Box::new(s(0)))),
                    Box::new(ScalarExpr::Index(1)),
                ),
            )],
        };
        let kernel = kernelize(&body).unwrap();
        // `s(0)` is loaded once: Slot, Mul, Index, Add.
        assert_eq!(kernel.ops.len(), 4);
        assert_eq!(kernel.n_dims, 2);

        let mut locals = [4i64, 0];
        kernel.execute_scalar(&mut locals, &[100, 9]);
        assert_eq!(locals, [4, 25]);
    }

    #[test]
    fn guarded_updates_are_rejected_with_a_reason() {
        let body = BasicStatement {
            updates: vec![GuardedUpdate {
                guard: Some(BoolExpr::Cmp(CmpOp::Eq, s(0), ScalarExpr::Const(0))),
                target: StreamId(0),
                value: ScalarExpr::Const(1),
            }],
        };
        let err = kernelize(&body).unwrap_err();
        assert!(err.contains("guarded update"), "got: {err}");
    }

    #[test]
    fn an_empty_body_is_rejected() {
        assert!(kernelize(&BasicStatement::default()).is_err());
    }
}
