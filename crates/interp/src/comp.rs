//! The computation-process virtual machine.
//!
//! Each computation process executes the canonical program shape of
//! Appendix C–E:
//!
//! ```text
//! load  s, drain_s          -- per stationary stream (keep 1st, pass rest)
//! pass  m, soak_m           -- per moving stream (soaking)
//! { first last increment }  -- the repeater: par-receive moving elements,
//!                           --   execute the basic statement, par-send
//! pass  m, drain_m          -- per moving stream (draining)
//! recover s, soak_s         -- per stationary stream (pass, then eject)
//! ```
//!
//! Since generated programs have no data-dependent control flow, the
//! process compiles to a short instruction list interpreted by a state
//! machine implementing [`Process`].

use std::sync::Arc;
use systolic_ir::{BasicStatement, Value};
use systolic_runtime::{ChanId, CommReq, Process};

/// One compiled instruction of a computation process.
#[derive(Clone, Debug)]
pub enum Instr {
    /// `receive` one value into the stream local (the keep of `load`).
    RecvKeep { slot: usize, chan: ChanId },
    /// `pass s, n`: `n` receive-forward cycles.
    PassN {
        in_chan: ChanId,
        out_chan: ChanId,
        n: i64,
    },
    /// `send` the stream local (the eject of `recover`).
    SendLocal { slot: usize, chan: ChanId },
    /// The repeater: `count` iterations of par-receive / execute /
    /// par-send over the moving streams.
    Compute,
}

/// Channel pair of one moving stream at this process.
#[derive(Clone, Copy, Debug)]
pub struct MovingChans {
    pub slot: usize,
    pub in_chan: ChanId,
    pub out_chan: ChanId,
}

/// What the previously issued communication set was, so `step` can absorb
/// its results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    None,
    RecvKeep {
        slot: usize,
    },
    /// A pass cycle's receive; the value must be forwarded next.
    PassRecv {
        out_chan: ChanId,
    },
    /// A pass cycle's send completed.
    PassSent,
    /// The repeater's par-receive; values land in moving-stream order.
    ComputeRecv,
    /// The repeater's par-send completed.
    ComputeSent,
    SendLocalDone,
}

/// The computation process at one point of the computation space.
pub struct CompProc {
    instrs: Vec<Instr>,
    pc: usize,
    /// Remaining cycles of the current `PassN`.
    pass_left: i64,
    pending: Pending,
    /// One local per stream of the source program.
    locals: Vec<Value>,
    /// Shared across the array's processes — the basic statement is
    /// identical at every point, so elaboration clones a pointer, not
    /// the expression tree.
    body: Arc<BasicStatement>,
    moving: Vec<MovingChans>,
    /// The repeater.
    first: Vec<i64>,
    increment: Vec<i64>,
    count: i64,
    /// Current index point and iteration.
    x: Vec<i64>,
    t: i64,
    label: String,
}

impl CompProc {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        instrs: Vec<Instr>,
        n_streams: usize,
        body: Arc<BasicStatement>,
        moving: Vec<MovingChans>,
        first: Vec<i64>,
        increment: Vec<i64>,
        count: i64,
        label: impl Into<String>,
    ) -> CompProc {
        let x = first.clone();
        CompProc {
            instrs,
            pc: 0,
            pass_left: -1,
            pending: Pending::None,
            locals: vec![0; n_streams],
            body,
            moving,
            first,
            increment,
            count,
            x,
            t: 0,
            label: label.into(),
        }
    }

    /// Absorb the results of the previous set; returns a value to forward
    /// if the previous op was a pass-receive.
    fn absorb(&mut self, received: &[Value]) -> Option<Value> {
        match self.pending {
            Pending::None | Pending::PassSent | Pending::ComputeSent | Pending::SendLocalDone => {
                None
            }
            Pending::RecvKeep { slot } => {
                self.locals[slot] = received[0];
                None
            }
            Pending::PassRecv { .. } => Some(received[0]),
            Pending::ComputeRecv => {
                for (mc, &v) in self.moving.iter().zip(received) {
                    self.locals[mc.slot] = v;
                }
                // Execute the basic statement at the current index point.
                self.body.execute(&mut self.locals, &self.x);
                None
            }
        }
    }
}

impl Process for CompProc {
    // `step_into` (not `step`) so the computation cells — the bulk of
    // every elaborated network — uphold the scheduler's zero-allocation
    // round invariant.
    fn step_into(&mut self, received: &[Value], out: &mut Vec<CommReq>) {
        // Phase 1: absorb the previous set.
        let forward = self.absorb(received);
        if let (Some(v), Pending::PassRecv { out_chan }) = (forward, self.pending) {
            self.pending = Pending::PassSent;
            out.push(CommReq::Send {
                chan: out_chan,
                value: v,
            });
            return;
        }
        if self.pending == Pending::ComputeRecv {
            // Body executed in absorb; now par-send the moving locals.
            self.pending = Pending::ComputeSent;
            out.extend(self.moving.iter().map(|mc| CommReq::Send {
                chan: mc.out_chan,
                value: self.locals[mc.slot],
            }));
            return;
        }
        if self.pending == Pending::ComputeSent {
            // Iteration finished: advance the repeater.
            self.t += 1;
            for (xi, &inc) in self.x.iter_mut().zip(&self.increment) {
                *xi += inc;
            }
        }

        // Phase 2: issue the next communication.
        loop {
            let Some(instr) = self.instrs.get(self.pc) else {
                self.pending = Pending::None;
                return;
            };
            match instr {
                Instr::RecvKeep { slot, chan } => {
                    let (slot, chan) = (*slot, *chan);
                    self.pc += 1;
                    self.pending = Pending::RecvKeep { slot };
                    out.push(CommReq::Recv { chan });
                    return;
                }
                Instr::PassN {
                    in_chan,
                    out_chan,
                    n,
                } => {
                    if self.pass_left < 0 {
                        self.pass_left = *n;
                    }
                    if self.pass_left == 0 {
                        self.pass_left = -1;
                        self.pc += 1;
                        continue;
                    }
                    self.pass_left -= 1;
                    self.pending = Pending::PassRecv {
                        out_chan: *out_chan,
                    };
                    out.push(CommReq::Recv { chan: *in_chan });
                    return;
                }
                Instr::SendLocal { slot, chan } => {
                    let req = CommReq::Send {
                        chan: *chan,
                        value: self.locals[*slot],
                    };
                    self.pc += 1;
                    self.pending = Pending::SendLocalDone;
                    out.push(req);
                    return;
                }
                Instr::Compute => {
                    if self.t >= self.count {
                        // Reset for a hypothetical later Compute (unused).
                        self.pc += 1;
                        self.t = 0;
                        self.x.copy_from_slice(&self.first);
                        continue;
                    }
                    if self.moving.is_empty() {
                        // No communications: execute the whole repeater
                        // locally in one go.
                        while self.t < self.count {
                            self.body.execute(&mut self.locals, &self.x);
                            self.t += 1;
                            for (xi, &inc) in self.x.iter_mut().zip(&self.increment) {
                                *xi += inc;
                            }
                        }
                        continue;
                    }
                    self.pending = Pending::ComputeRecv;
                    out.extend(
                        self.moving
                            .iter()
                            .map(|mc| CommReq::Recv { chan: mc.in_chan }),
                    );
                    return;
                }
            }
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ir::expr::build::*;
    use systolic_runtime::{sink_buffer, ChannelPolicy, Network, SinkProc, SourceProc};

    /// A single computation process computing c := c + a*b over a 3-long
    /// chord, with a and b moving and c stationary-loaded.
    #[test]
    fn single_process_inner_product() {
        let body = BasicStatement {
            updates: vec![assign(2, add(s(2), mul(s(0), s(1))))],
        };
        // Channels: a: 0 -> 1; b: 2 -> 3; c: 4 -> 5 (stationary pipe).
        let instrs = vec![
            Instr::RecvKeep { slot: 2, chan: 4 },
            Instr::PassN {
                in_chan: 4,
                out_chan: 5,
                n: 0,
            },
            Instr::Compute,
            Instr::PassN {
                in_chan: 4,
                out_chan: 5,
                n: 0,
            },
            Instr::SendLocal { slot: 2, chan: 5 },
        ];
        let moving = vec![
            MovingChans {
                slot: 0,
                in_chan: 0,
                out_chan: 1,
            },
            MovingChans {
                slot: 1,
                in_chan: 2,
                out_chan: 3,
            },
        ];
        let comp = CompProc::new(instrs, 3, Arc::new(body), moving, vec![0, 0], vec![0, 1], 3, "comp");

        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let a_out = sink_buffer();
        let b_out = sink_buffer();
        let c_out = sink_buffer();
        net.add(Box::new(SourceProc::new(0, vec![2, 3, 4], "a-in")));
        net.add(Box::new(SourceProc::new(2, vec![10, 100, 1000], "b-in")));
        net.add(Box::new(SourceProc::new(4, vec![5], "c-in")));
        net.add(Box::new(comp));
        net.add(Box::new(SinkProc::new(1, 3, a_out.clone(), "a-out")));
        net.add(Box::new(SinkProc::new(3, 3, b_out.clone(), "b-out")));
        net.add(Box::new(SinkProc::new(5, 1, c_out.clone(), "c-out")));
        net.run().unwrap();
        assert_eq!(*a_out.lock(), vec![2, 3, 4], "a passes through");
        assert_eq!(*b_out.lock(), vec![10, 100, 1000]);
        assert_eq!(*c_out.lock(), vec![5 + 2 * 10 + 3 * 100 + 4 * 1000]);
    }

    /// Soak and drain: the process relays elements it does not use.
    #[test]
    fn soak_compute_drain() {
        // Stream a moves through; process uses only the middle element
        // (soak 1, compute 1, drain 1). Body: c := a (c never communicated;
        // use SendLocal at the end on a scratch channel to observe it).
        let body = BasicStatement {
            updates: vec![assign(1, s(0))],
        };
        let instrs = vec![
            Instr::PassN {
                in_chan: 0,
                out_chan: 1,
                n: 1,
            },
            Instr::Compute,
            Instr::PassN {
                in_chan: 0,
                out_chan: 1,
                n: 1,
            },
            Instr::SendLocal { slot: 1, chan: 6 },
        ];
        let moving = vec![MovingChans {
            slot: 0,
            in_chan: 0,
            out_chan: 1,
        }];
        let comp = CompProc::new(instrs, 2, Arc::new(body), moving, vec![0], vec![1], 1, "comp");
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        let a_out = sink_buffer();
        let kept = sink_buffer();
        net.add(Box::new(SourceProc::new(0, vec![7, 8, 9], "a-in")));
        net.add(Box::new(comp));
        net.add(Box::new(SinkProc::new(1, 3, a_out.clone(), "a-out")));
        net.add(Box::new(SinkProc::new(6, 1, kept.clone(), "kept")));
        net.run().unwrap();
        assert_eq!(*a_out.lock(), vec![7, 8, 9]);
        assert_eq!(*kept.lock(), vec![8], "used the soaked-past middle element");
    }
}
