//! Plan-level observability: run an elaborated plan with the runtime's
//! recorders attached and map the results back to source-level names.
//!
//! The runtime's `record` module speaks in process ids and dense channel
//! ids; this module adds what only the elaboration knows — which stream
//! and which process-space point each channel belongs to — so the
//! [`MetricsReport`] and the Perfetto trace read in the paper's
//! vocabulary (`a@(3):in` instead of `chan 17`).
//!
//! Two artifacts come out of one observed run:
//!
//! - a [`MetricsReport`] (`systolic-metrics-v1` JSON): per-process op and
//!   phase counts, per-channel transfer/wait statistics, soak/compute/
//!   drain makespan attribution, wait and occupancy histograms;
//! - a Chrome `trace_event` JSON document for <https://ui.perfetto.dev>:
//!   one track per process, one per channel.
//!
//! The CLI exposes both as `run --metrics PATH --trace-out PATH`; see
//! `docs/observability.md`.

use crate::cache::{CacheStats, ModuleStore};
use crate::elaborate::{ElabOptions, Elaborated};
use crate::exec::{writeback, ExecError, SystolicRun};
use std::sync::Arc;
use systolic_core::SystolicProgram;
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{
    shared, ChannelPolicy, KernelPlan, MetricsRecorder, MetricsReport, Network, OptMode,
    OptReport, PerfettoRecorder, WavefrontPlan,
};

/// One observed run: the ordinary execution outcome plus the two
/// observability artifacts.
pub struct Observed {
    pub run: SystolicRun,
    /// The aggregated metrics (render with [`MetricsReport::to_json`]).
    pub report: MetricsReport,
    /// The rendered Chrome `trace_event` document.
    pub perfetto_json: String,
    /// The `systolic-opt-v1` mapping report the ProcIR optimizer derives
    /// for this module (see `systolic_runtime::opt`), or `None` when the
    /// optimizer leaves it untouched. Observed runs always *execute* the
    /// exact rendezvous engine (recorders close the batching gate), so
    /// the metrics above describe the unoptimized module; this report is
    /// the structural mapping an `--opt auto` run of the same plan uses.
    pub opt_report: Option<OptReport>,
    /// Snapshot of the module-store counters
    /// ([`ModuleStore::global`]`.stats()`) taken right after this run's
    /// elaboration, so the report shows whether it was served warm.
    pub cache: CacheStats,
    /// The memoized wavefront staging this module would run under (see
    /// `systolic_runtime::wavefront`): observed runs execute the exact
    /// rendezvous engine, but the report still says whether — and how —
    /// the wavefront executor could take this module.
    pub wavefront_plan: Arc<WavefrontPlan>,
    /// The memoized kernel eligibility split over that wave structure
    /// (see `systolic_runtime::kernel` and `docs/kernels.md`): whether a
    /// kernel compiled, which chunks a `--kernel auto` wavefront run
    /// would fuse, and why the rest fall back to scalar sweeps.
    pub kernel_plan: Arc<KernelPlan>,
}

impl Observed {
    /// The metrics JSON with the module-cache counters spliced in as an
    /// `"elab_cache"` section, the optimizer mapping report as an
    /// `"optimizer"` section (absent when the module is untouched), and
    /// the wavefront staging facts as a `"wavefront"` section — what
    /// `run --metrics PATH` writes.
    pub fn metrics_json(&self) -> String {
        let base = self.report.to_json();
        let stem = base
            .trim_end()
            .strip_suffix('}')
            .expect("metrics JSON ends with its root object brace")
            .trim_end()
            .to_string();
        let mut sections = String::new();
        if let Some(r) = &self.opt_report {
            let indented = r.to_json().trim_end().replace('\n', "\n  ");
            sections.push_str(&format!(",\n  \"optimizer\": {indented}"));
        }
        sections.push_str(&format!(",\n  \"elab_cache\": {}", self.cache.to_json()));
        let wp = &self.wavefront_plan;
        let wf = match wp.reject_reason() {
            None => format!(
                "{{ \"eligible\": true, \"waves\": {}, \"chunks\": {}, \"max_ring_capacity\": {} }}",
                wp.n_waves(),
                wp.n_chunks(),
                wp.max_capacity()
            ),
            Some(r) => format!(
                "{{ \"eligible\": false, \"reason\": \"{}\" }}",
                r.replace('\\', "\\\\").replace('"', "\\\"")
            ),
        };
        sections.push_str(&format!(",\n  \"wavefront\": {wf}"));
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let kp = &self.kernel_plan;
        let mut kern = format!(
            "{{ \"compiled\": {}, \"eligible_chunks\": {}, \"scalar_chunks\": {}, \"waves_fusable\": {}",
            kp.compiled,
            kp.eligible_chunks,
            kp.chunk_reject.len() - kp.eligible_chunks,
            kp.waves_fusable
        );
        if let Some(r) = &kp.reject {
            kern.push_str(&format!(", \"reject\": \"{}\"", esc(r)));
        }
        let fallbacks = kp.fallbacks();
        if !fallbacks.is_empty() {
            let items: Vec<String> = fallbacks
                .iter()
                .map(|(r, n)| format!("{{ \"reason\": \"{}\", \"chunks\": {n} }}", esc(r)))
                .collect();
            kern.push_str(&format!(", \"fallbacks\": [{}]", items.join(", ")));
        }
        kern.push_str(" }");
        sections.push_str(&format!(",\n  \"kernels\": {kern}"));
        format!("{stem}{sections}\n}}\n")
    }
}

/// Display names for every channel of an elaborated module, indexed by
/// `ChanId`: `stream@(coords):in` / `:out` for the endpoints recorded in
/// [`Elaborated::endpoints`], `chan N` for everything else (host fringe
/// wires, inserted buffers).
pub fn channel_names(plan: &SystolicProgram, el: &Elaborated) -> Vec<String> {
    let mut names = vec![String::new(); el.module.n_chans];
    for (sid, y, ic, oc) in &el.endpoints {
        let stream = &plan.streams[*sid].name;
        let coord = y
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        if names[*ic].is_empty() {
            names[*ic] = format!("{stream}@({coord}):in");
        }
        if names[*oc].is_empty() {
            names[*oc] = format!("{stream}@({coord}):out");
        }
    }
    for (i, n) in names.iter_mut().enumerate() {
        if n.is_empty() {
            *n = format!("chan {i}");
        }
    }
    names
}

/// Run the plan on the cooperative scheduler with a [`MetricsRecorder`]
/// and a [`PerfettoRecorder`] attached, returning the run outcome and
/// both artifacts. Timing differs from an unobserved run only in wall
/// clock — rounds, messages, steps, and the result store are identical.
pub fn observe_plan(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
) -> Result<Observed, ExecError> {
    observe_plan_in(ModuleStore::global(), plan, env, store, policy, opts)
}

/// [`observe_plan`] against an explicit [`ModuleStore`] — the entry
/// point the service's metrics/trace outputs use so their cache
/// counters describe the service's own store.
pub fn observe_plan_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
) -> Result<Observed, ExecError> {
    let cm = ms.module(plan, env, store, opts)?;
    let cache = ms.stats();
    let el = &cm.elab;
    let names = channel_names(plan, el);
    let (metrics, m_erased) = shared(MetricsRecorder::new());
    let (perfetto, p_erased) = shared(PerfettoRecorder::new().with_channel_names(names));
    let recorders = vec![m_erased, p_erased];
    let inst = el.module.instantiate_recorded(&recorders);
    let mut net = Network::new(policy);
    for r in &recorders {
        net.add_recorder(r.clone());
    }
    for p in inst.procs {
        net.add(p);
    }
    let stats = net.run()?;
    let mut result = store.clone();
    writeback(&el.outputs, &inst.outputs, &mut result)?;
    let report = metrics.lock().report();
    let perfetto_json = perfetto.lock().to_json();
    let opt_report = el.optimize(OptMode::Auto).map(|o| o.report);
    Ok(Observed {
        run: SystolicRun {
            store: result,
            stats,
            census: el.census.clone(),
            batched: false,
            wavefront: false,
            opt: None,
            kernel: None,
        },
        report,
        perfetto_json,
        opt_report,
        cache,
        wavefront_plan: cm.wavefront_plan().clone(),
        kernel_plan: cm.kernel_plan().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_plan;
    use systolic_core::{compile, Options};
    use systolic_ir::seq;
    use systolic_synthesis::placement::paper;

    fn setup(n: i64) -> (SystolicProgram, Env, HostStore) {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 1, -9, 9);
        store.fill_random("b", 2, -9, 9);
        (plan, env, store)
    }

    #[test]
    fn observation_does_not_perturb_the_run() {
        let (plan, env, store) = setup(4);
        let plain = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        let obs = observe_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        assert_eq!(obs.run.stats, plain.stats);
        for name in plain.store.names() {
            assert_eq!(obs.run.store.get(name), plain.store.get(name), "{name}");
        }
        // And the run is actually correct.
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);
        assert_eq!(obs.run.store.get("c"), expected.get("c"));
    }

    #[test]
    fn report_reconciles_with_run_stats() {
        let (plan, env, store) = setup(5);
        let obs = observe_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        let stats = &obs.run.stats;
        assert_eq!(obs.report.transfers, stats.messages);
        assert_eq!(obs.report.end_time, stats.rounds);
        assert_eq!(obs.report.processes.len(), stats.processes);
        let steps: u64 = obs.report.processes.iter().map(|p| p.steps).sum();
        assert_eq!(steps, stats.steps);
        // Makespan attribution partitions the rounds.
        assert_eq!(
            obs.report.soak_lead_in() + obs.report.compute_window() + obs.report.drain_tail(),
            stats.rounds
        );
        // The compute plateau is where the basic statements run.
        let ops = obs.report.op_totals();
        assert!(ops[systolic_runtime::OpKind::Compute as usize] > 0);
    }

    #[test]
    fn channel_names_cover_every_endpoint() {
        let (plan, env, store) = setup(3);
        let el = crate::elaborate::elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        let names = channel_names(&plan, &el);
        assert_eq!(names.len(), el.module.n_chans);
        for (sid, _, ic, oc) in &el.endpoints {
            let stream = &plan.streams[*sid].name;
            assert!(names[*ic].starts_with(stream.as_str()), "{}", names[*ic]);
            assert!(names[*oc].starts_with(stream.as_str()), "{}", names[*oc]);
        }
        // Stream-and-coordinate names reach the Perfetto document.
        let obs = observe_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        assert!(obs.perfetto_json.contains("a@("), "{}", obs.perfetto_json);
        assert!(obs.perfetto_json.contains("\"traceEvents\""));
    }
}
