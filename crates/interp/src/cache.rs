//! The module store: a two-level, `Arc`-shared cache in front of the
//! two-phase elaborator (`crate::skeleton`).
//!
//! Level 1 caches **skeletons** — size-parametric compiles keyed by
//! `(program fingerprint, ElabOptions)`. Level 2 caches **instantiated
//! modules** keyed by `(program fingerprint, ElabOptions, size values,
//! host-store fingerprint)`. The store fingerprint is part of the key
//! because elaboration bakes input *values* into source scripts
//! (`HostStore::fingerprint`); two runs over different data need
//! different modules even at the same size.
//!
//! Each cached module also lazily memoizes the downstream per-module
//! analyses the executors repeat today: the batch plan
//! (`systolic_runtime::analyze`) and the optimizer result
//! ([`CachedModule::optimized`]), so a warm `run --batch auto --opt
//! auto` pays for neither.
//!
//! Entries never go stale silently: the plan fingerprint covers the
//! whole derived plan (any recompilation with different
//! placement/options moves it) and the data fingerprint covers every
//! host value. [`ModuleStore::invalidate`] /
//! [`ModuleStore::invalidate_program`] exist for callers that mutate
//! behind those keys deliberately (or just want the memory back); both
//! bump a generation counter so tests and metrics can observe the
//! flush. Capacity is bounded by FIFO eviction — the store is a cache,
//! not a leak.

use crate::elaborate::{ElabError, ElabOptions, Elaborated};
use crate::skeleton::{elaborate_skeleton, instantiate, SkeletonModule};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use systolic_core::SystolicProgram;
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{
    analyze_kernels, analyze_wavefront, BatchPlan, KernelPlan, OptMode, OptimizedModule,
    WavefrontPlan,
};

/// Retained skeletons (level 1). Skeletons are small — per-stream
/// specialized forms, no per-point state.
const SKELETON_CAP: usize = 32;
/// Retained instantiated modules (level 2). Modules hold the full
/// per-point bytecode, so the cap is what bounds memory.
const MODULE_CAP: usize = 64;

/// Cache observability counters, exposed through the
/// `systolic-metrics-v1` report (`elab_cache` section) and the CI cache
/// artifact. Times are cumulative nanoseconds spent on misses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub skeleton_hits: u64,
    pub skeleton_misses: u64,
    pub module_hits: u64,
    pub module_misses: u64,
    /// Total time in phase 1 (`elaborate_skeleton`) across misses.
    pub skeleton_build_ns: u64,
    /// Total time in phase 2 (`instantiate`) across misses.
    pub instantiate_ns: u64,
    /// Skeletons dropped by FIFO capacity management (not invalidation).
    pub skeleton_evictions: u64,
    /// Modules dropped by FIFO capacity management (not invalidation).
    pub module_evictions: u64,
    /// Bumped by every explicit invalidation.
    pub generation: u64,
}

impl CacheStats {
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"skeleton_hits\":{},\"skeleton_misses\":{},",
                "\"module_hits\":{},\"module_misses\":{},",
                "\"skeleton_build_ns\":{},\"instantiate_ns\":{},",
                "\"skeleton_evictions\":{},\"module_evictions\":{},",
                "\"generation\":{}}}"
            ),
            self.skeleton_hits,
            self.skeleton_misses,
            self.module_hits,
            self.module_misses,
            self.skeleton_build_ns,
            self.instantiate_ns,
            self.skeleton_evictions,
            self.module_evictions,
            self.generation,
        )
    }
}

/// One instantiated module plus its lazily memoized per-module
/// analyses. Everything here is immutable after construction; per-run
/// state lives in the VMs `elab.module.instantiate*` builds.
pub struct CachedModule {
    pub elab: Elaborated,
    batch: OnceLock<BatchPlan>,
    optd: OnceLock<Option<Arc<(OptimizedModule, BatchPlan)>>>,
    wf: OnceLock<Arc<WavefrontPlan>>,
    wf_opt: OnceLock<Arc<WavefrontPlan>>,
    kern: OnceLock<Arc<KernelPlan>>,
    kern_opt: OnceLock<Arc<KernelPlan>>,
}

impl CachedModule {
    fn new(elab: Elaborated) -> CachedModule {
        CachedModule {
            elab,
            batch: OnceLock::new(),
            optd: OnceLock::new(),
            wf: OnceLock::new(),
            wf_opt: OnceLock::new(),
            kern: OnceLock::new(),
            kern_opt: OnceLock::new(),
        }
    }

    /// The batch analysis of the elaborated module, computed once per
    /// cached module rather than once per run.
    pub fn batch_plan(&self) -> &BatchPlan {
        self.batch
            .get_or_init(|| systolic_runtime::analyze(&self.elab.module))
    }

    /// The ProcIR optimizer applied to an already-proven-batchable
    /// module, with the fused module's batch re-analysis (delay-ring
    /// capacities layered in). `None` when the mode forbids it, the
    /// module is already optimal, or (defensively) the fused module
    /// fails re-analysis — fusion preserves endpoint uniqueness and
    /// traffic balance, so the last case indicates an optimizer bug
    /// rather than a legal decline.
    pub fn optimized(&self, mode: OptMode) -> Option<Arc<(OptimizedModule, BatchPlan)>> {
        if mode == OptMode::Off {
            return None;
        }
        self.optd
            .get_or_init(|| {
                let o = systolic_runtime::optimize(&self.elab.module)?;
                let oplan = systolic_runtime::analyze_with_caps(&o.module, &o.chan_caps);
                if !oplan.batchable() {
                    debug_assert!(
                        false,
                        "fused module failed re-analysis: {:?}",
                        oplan.reject_reason()
                    );
                    return None;
                }
                Some(Arc::new((o, oplan)))
            })
            .clone()
    }

    /// The wavefront plan of the elaborated module
    /// (`systolic_runtime::analyze_wavefront` over [`CachedModule::batch_plan`]),
    /// memoized beside the batch plan so a warm `run --wavefront auto`
    /// pays for neither analysis.
    pub fn wavefront_plan(&self) -> &Arc<WavefrontPlan> {
        self.wf
            .get_or_init(|| Arc::new(analyze_wavefront(&self.elab.module, self.batch_plan())))
    }

    /// The wavefront plan of the *optimized* module (fused relays change
    /// the process graph, so the wave structure must be re-derived).
    /// `None` exactly when [`CachedModule::optimized`] declines.
    pub fn wavefront_plan_opt(&self, mode: OptMode) -> Option<Arc<WavefrontPlan>> {
        let o = self.optimized(mode)?;
        Some(
            self.wf_opt
                .get_or_init(|| Arc::new(analyze_wavefront(&o.0.module, &o.1)))
                .clone(),
        )
    }

    /// The per-chunk kernel eligibility analysis over
    /// [`CachedModule::wavefront_plan`], memoized so a warm
    /// `run --wavefront auto --kernel auto` recompiles nothing.
    pub fn kernel_plan(&self) -> &Arc<KernelPlan> {
        self.kern.get_or_init(|| {
            let wf = self.wavefront_plan().clone();
            Arc::new(analyze_kernels(&self.elab.module, &wf))
        })
    }

    /// Kernel eligibility of the *optimized* module's wave structure.
    /// `None` exactly when [`CachedModule::optimized`] declines.
    pub fn kernel_plan_opt(&self, mode: OptMode) -> Option<Arc<KernelPlan>> {
        let o = self.optimized(mode)?;
        let wf = self.wavefront_plan_opt(mode)?;
        Some(
            self.kern_opt
                .get_or_init(|| Arc::new(analyze_kernels(&o.0.module, &wf)))
                .clone(),
        )
    }
}

type SkelKey = (u64, ElabOptions);
type ModKey = (u64, ElabOptions, Vec<i64>, u64);

struct Inner {
    skeletons: HashMap<SkelKey, Arc<SkeletonModule>>,
    skel_order: VecDeque<SkelKey>,
    modules: HashMap<ModKey, Arc<CachedModule>>,
    mod_order: VecDeque<ModKey>,
    skel_cap: usize,
    mod_cap: usize,
    stats: CacheStats,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            skeletons: HashMap::new(),
            skel_order: VecDeque::new(),
            modules: HashMap::new(),
            mod_order: VecDeque::new(),
            skel_cap: SKELETON_CAP,
            mod_cap: MODULE_CAP,
            stats: CacheStats::default(),
        }
    }
}

impl Inner {
    fn skeleton(
        &mut self,
        plan: &SystolicProgram,
        opts: &ElabOptions,
        fp: u64,
    ) -> Arc<SkeletonModule> {
        let key = (fp, opts.clone());
        if let Some(s) = self.skeletons.get(&key) {
            self.stats.skeleton_hits += 1;
            return s.clone();
        }
        self.stats.skeleton_misses += 1;
        let t = Instant::now();
        let skel = elaborate_skeleton(plan, opts);
        self.stats.skeleton_build_ns += t.elapsed().as_nanos() as u64;
        if self.skeletons.len() >= self.skel_cap {
            if let Some(old) = self.skel_order.pop_front() {
                self.skeletons.remove(&old);
                self.stats.skeleton_evictions += 1;
            }
        }
        self.skel_order.push_back(key.clone());
        self.skeletons.insert(key, skel.clone());
        skel
    }
}

/// The process-wide module cache. Executors go through
/// [`ModuleStore::global`]; tests that need isolation construct their
/// own with [`ModuleStore::new`].
#[derive(Default)]
pub struct ModuleStore {
    inner: Mutex<Inner>,
}

impl ModuleStore {
    pub fn new() -> ModuleStore {
        ModuleStore::default()
    }

    /// A store with explicit FIFO capacities, for tests that want
    /// eviction to fire early and for services tuning memory.
    pub fn with_capacity(skeletons: usize, modules: usize) -> ModuleStore {
        let ms = ModuleStore::default();
        {
            let mut g = ms.inner.lock().unwrap();
            g.skel_cap = skeletons.max(1);
            g.mod_cap = modules.max(1);
        }
        ms
    }

    /// The shared process-wide store.
    pub fn global() -> &'static ModuleStore {
        static GLOBAL: OnceLock<ModuleStore> = OnceLock::new();
        GLOBAL.get_or_init(ModuleStore::new)
    }

    /// Phase 1 through the cache: the size-parametric skeleton for
    /// `(plan, opts)`.
    pub fn skeleton(&self, plan: &SystolicProgram, opts: &ElabOptions) -> Arc<SkeletonModule> {
        let fp = plan_fingerprint(plan);
        self.inner.lock().unwrap().skeleton(plan, opts, fp)
    }

    /// Both phases through the cache: the instantiated module for
    /// `(plan, opts)` at the size bound in `env` over the data in
    /// `store`. A hit returns the shared `Arc` without touching the
    /// plan; a miss runs whichever phases are cold and caches the
    /// result. Instantiation errors are returned (and not cached — a
    /// failing configuration re-diagnoses on every attempt, exactly
    /// like direct elaboration).
    pub fn module(
        &self,
        plan: &SystolicProgram,
        env: &Env,
        store: &HostStore,
        opts: &ElabOptions,
    ) -> Result<Arc<CachedModule>, ElabError> {
        let fp = plan_fingerprint(plan);
        let sizes: Vec<i64> = plan.source.sizes.iter().map(|&v| env.expect(v)).collect();
        let key = (fp, opts.clone(), sizes, store.fingerprint());
        let mut g = self.inner.lock().unwrap();
        if let Some(m) = g.modules.get(&key).cloned() {
            g.stats.module_hits += 1;
            return Ok(m);
        }
        g.stats.module_misses += 1;
        let skel = g.skeleton(plan, opts, fp);
        let t = Instant::now();
        let elab = instantiate(&skel, env, store)?;
        g.stats.instantiate_ns += t.elapsed().as_nanos() as u64;
        let m = Arc::new(CachedModule::new(elab));
        if g.modules.len() >= g.mod_cap {
            if let Some(old) = g.mod_order.pop_front() {
                g.modules.remove(&old);
                g.stats.module_evictions += 1;
            }
        }
        g.mod_order.push_back(key.clone());
        g.modules.insert(key, m.clone());
        Ok(m)
    }

    /// Drop everything and bump the generation.
    pub fn invalidate(&self) {
        let mut g = self.inner.lock().unwrap();
        g.skeletons.clear();
        g.skel_order.clear();
        g.modules.clear();
        g.mod_order.clear();
        g.stats.generation += 1;
    }

    /// Drop the skeletons and modules of one program (every options /
    /// size / data variant), leaving other programs' entries hot.
    pub fn invalidate_program(&self, plan: &SystolicProgram) {
        let fp = plan_fingerprint(plan);
        let mut g = self.inner.lock().unwrap();
        g.skeletons.retain(|k, _| k.0 != fp);
        g.skel_order.retain(|k| k.0 != fp);
        g.modules.retain(|k, _| k.0 != fp);
        g.mod_order.retain(|k| k.0 != fp);
        g.stats.generation += 1;
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats.clone()
    }

    /// The invalidation generation (also in [`CacheStats`]).
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().stats.generation
    }
}

/// Content fingerprint of a compiled plan: the hash of its full `Debug`
/// rendering. The plan is a pure value (no interior mutability, no
/// addresses in its debug output), so equal renderings mean
/// interchangeable plans; any change to placement, schedule, or stream
/// layout moves the string.
fn plan_fingerprint(plan: &SystolicProgram) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{plan:?}").hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    fn plan_and_env(n: i64) -> (SystolicProgram, Env) {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], n);
        (plan, env)
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_arc() {
        let (plan, env) = plan_and_env(4);
        let store = HostStore::allocate(&plan.source, &env);
        let ms = ModuleStore::new();
        let a = ms
            .module(&plan, &env, &store, &ElabOptions::default())
            .unwrap();
        let b = ms
            .module(&plan, &env, &store, &ElabOptions::default())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = ms.stats();
        assert_eq!((s.module_hits, s.module_misses), (1, 1));
        assert_eq!((s.skeleton_hits, s.skeleton_misses), (0, 1));
    }

    #[test]
    fn new_size_reuses_the_skeleton() {
        let (plan, env4) = plan_and_env(4);
        let store4 = HostStore::allocate(&plan.source, &env4);
        let ms = ModuleStore::new();
        ms.module(&plan, &env4, &store4, &ElabOptions::default())
            .unwrap();
        let (_, env6) = plan_and_env(6);
        let store6 = HostStore::allocate(&plan.source, &env6);
        ms.module(&plan, &env6, &store6, &ElabOptions::default())
            .unwrap();
        let s = ms.stats();
        assert_eq!((s.skeleton_hits, s.skeleton_misses), (1, 1));
        assert_eq!((s.module_hits, s.module_misses), (0, 2));
    }

    #[test]
    fn data_edit_is_a_different_key() {
        let (plan, env) = plan_and_env(3);
        let store = HostStore::allocate(&plan.source, &env);
        let ms = ModuleStore::new();
        ms.module(&plan, &env, &store, &ElabOptions::default())
            .unwrap();
        let mut edited = store.clone();
        edited.fill_random("a", 5, -9, 9);
        ms.module(&plan, &env, &edited, &ElabOptions::default())
            .unwrap();
        let s = ms.stats();
        assert_eq!(s.module_hits, 0, "edited data must not hit");
        assert_eq!(s.module_misses, 2);
    }

    #[test]
    fn invalidate_program_leaves_other_plans_hot() {
        let (plan_a, env_a) = plan_and_env(3);
        let (p, a) = paper::matmul_e1();
        let plan_b = compile(&p, &a, &Options::default()).unwrap();
        let mut env_b = Env::new();
        env_b.bind(plan_b.source.sizes[0], 2);
        let store_a = HostStore::allocate(&plan_a.source, &env_a);
        let store_b = HostStore::allocate(&plan_b.source, &env_b);
        let ms = ModuleStore::new();
        ms.module(&plan_a, &env_a, &store_a, &ElabOptions::default())
            .unwrap();
        ms.module(&plan_b, &env_b, &store_b, &ElabOptions::default())
            .unwrap();
        let g0 = ms.generation();
        ms.invalidate_program(&plan_a);
        assert_eq!(ms.generation(), g0 + 1);
        ms.module(&plan_a, &env_a, &store_a, &ElabOptions::default())
            .unwrap();
        ms.module(&plan_b, &env_b, &store_b, &ElabOptions::default())
            .unwrap();
        let s = ms.stats();
        // plan_a re-misses after its flush; plan_b stays hot.
        assert_eq!(s.module_misses, 3);
        assert_eq!(s.module_hits, 1);
    }

    #[test]
    fn fifo_eviction_bounds_the_store() {
        let (plan, _) = plan_and_env(0);
        let ms = ModuleStore::new();
        for n in 1..=(MODULE_CAP as i64 + 8) {
            let mut env = Env::new();
            env.bind(plan.source.sizes[0], n);
            let store = HostStore::allocate(&plan.source, &env);
            ms.module(&plan, &env, &store, &ElabOptions::default())
                .unwrap();
        }
        let g = ms.inner.lock().unwrap();
        assert!(g.modules.len() <= MODULE_CAP);
        assert_eq!(g.modules.len(), g.mod_order.len());
    }

    /// Named regression for eviction racing a `--sweep-sizes` sweep: a
    /// sweep far past `MODULE_CAP` FIFO-evicts its earliest modules
    /// while later sizes keep arriving. Re-requesting an evicted
    /// configuration must rebuild a structurally bit-identical module
    /// (same bytecode arena, data, links, and points — the sweep has not
    /// poisoned the skeleton), and the `elab_cache` generation counter
    /// must stay monotone and untouched: eviction is capacity
    /// management, not invalidation.
    #[test]
    fn evicted_module_reinstantiates_bit_identically_across_a_sweep() {
        let (plan, _) = plan_and_env(0);
        let ms = ModuleStore::new();
        let mk = |n: i64| {
            let mut env = Env::new();
            env.bind(plan.source.sizes[0], n);
            let store = HostStore::allocate(&plan.source, &env);
            (env, store)
        };
        let (env1, store1) = mk(1);
        let first = ms
            .module(&plan, &env1, &store1, &ElabOptions::default())
            .unwrap();
        let wf_first = first.wavefront_plan().clone();
        let g0 = ms.generation();
        let mut gens = vec![g0];
        for n in 2..=(MODULE_CAP as i64 + 9) {
            let (env, store) = mk(n);
            ms.module(&plan, &env, &store, &ElabOptions::default())
                .unwrap();
            gens.push(ms.generation());
        }
        {
            let g = ms.inner.lock().unwrap();
            assert!(g.modules.len() <= MODULE_CAP);
        }
        let again = ms
            .module(&plan, &env1, &store1, &ElabOptions::default())
            .unwrap();
        assert!(
            !Arc::ptr_eq(&first, &again),
            "the n=1 module must have been FIFO-evicted by the sweep"
        );
        assert!(
            first.elab.module.same_structure(&again.elab.module),
            "re-instantiation after eviction must be bit-identical"
        );
        // The memoized analyses rebuild to the same wave structure.
        let wf_again = again.wavefront_plan();
        assert_eq!(wf_first.waves, wf_again.waves);
        assert_eq!(wf_first.capacities, wf_again.capacities);
        assert!(
            gens.windows(2).all(|w| w[0] <= w[1]),
            "generation counters must stay monotone across the sweep"
        );
        assert_eq!(
            ms.generation(),
            g0,
            "eviction must not bump the invalidation generation"
        );
        // The sweep instantiated MODULE_CAP + 9 distinct modules plus the
        // post-eviction re-request into a MODULE_CAP-slot store; every
        // overflow is one counted eviction, none lost.
        let s = ms.stats();
        assert_eq!(s.module_evictions, s.module_misses - MODULE_CAP as u64);
        assert_eq!(s.skeleton_evictions, 0, "one skeleton never overflows");
    }

    #[test]
    fn with_capacity_counts_every_eviction_exactly() {
        let (plan, _) = plan_and_env(0);
        let ms = ModuleStore::with_capacity(4, 3);
        for n in 1..=10i64 {
            let mut env = Env::new();
            env.bind(plan.source.sizes[0], n);
            let store = HostStore::allocate(&plan.source, &env);
            ms.module(&plan, &env, &store, &ElabOptions::default())
                .unwrap();
        }
        let s = ms.stats();
        assert_eq!(s.module_misses, 10);
        assert_eq!(s.module_evictions, 7, "10 misses into 3 slots evict 7");
        {
            let g = ms.inner.lock().unwrap();
            assert_eq!(g.modules.len(), 3);
            assert_eq!(g.mod_order.len(), 3);
        }
        let j = s.to_json();
        assert!(j.contains("\"module_evictions\":7"), "{j}");
    }

    #[test]
    fn stats_json_is_well_formed() {
        let s = CacheStats {
            skeleton_hits: 1,
            module_misses: 2,
            ..Default::default()
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"skeleton_hits\":1"));
        assert!(j.contains("\"module_misses\":2"));
    }
}
