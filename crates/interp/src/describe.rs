//! A human-readable map of the elaborated network: every process with
//! its role, counts, and channels — the "linker map" of a systolic
//! program. Useful for debugging designs and for teaching what the
//! compiled plan actually builds at a given problem size.

use std::fmt::Write as _;
use systolic_core::{StreamKind, SystolicProgram};
use systolic_math::{point, Env};

/// Render the per-process map at a concrete problem size.
pub fn describe(plan: &SystolicProgram, env: &Env) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== network map: {} ===", plan.source.name);
    let bx = plan.ps_box(env);
    let _ = writeln!(
        out,
        "process space: {}",
        bx.iter()
            .map(|(lo, hi)| format!("[{lo}..{hi}]"))
            .collect::<Vec<_>>()
            .join(" x ")
    );

    // Computation and buffer processes.
    for y in plan.ps_points(env) {
        if let Some(first) = plan.first_at(env, &y) {
            let count = plan.count_at(env, &y);
            let last = plan.last_at(env, &y).unwrap();
            let _ = writeln!(
                out,
                "comp {:>10}  repeater {} -> {} ({} steps)",
                point::fmt_point(&y),
                point::fmt_point(&first),
                point::fmt_point(&last),
                count
            );
            for sp in &plan.streams {
                let soak = plan.stream_count_at(&sp.soak, env, &y);
                let drain = plan.stream_count_at(&sp.drain, env, &y);
                let role = match &sp.kind {
                    StreamKind::Moving => format!("soak {soak}, use {count}, drain {drain}"),
                    StreamKind::Stationary { .. } => {
                        format!("load (pass {drain}), keep 1, recover (pass {soak})")
                    }
                };
                let _ = writeln!(out, "      {:<4} {role}", sp.name);
            }
        } else {
            let passes: Vec<String> = plan
                .streams
                .iter()
                .map(|sp| {
                    let n = plan.stream_count_at(&sp.pass_total, env, &y);
                    format!("{}:{}", sp.name, n)
                })
                .collect();
            let _ = writeln!(
                out,
                "null {:>10}  pass {}",
                point::fmt_point(&y),
                passes.join(" ")
            );
        }
    }

    // Pipes per stream.
    let inside = |p: &Vec<i64>| p.iter().zip(&bx).all(|(&x, &(lo, hi))| x >= lo && x <= hi);
    for sp in &plan.streams {
        let _ = writeln!(
            out,
            "stream {} ({}), unit flow {}, {} relay(s)/edge:",
            sp.name,
            match &sp.kind {
                StreamKind::Moving => "moving".to_string(),
                StreamKind::Stationary { loading_vector } => format!(
                    "stationary, loaded along {}",
                    point::fmt_point(loading_vector)
                ),
            },
            point::fmt_point(&sp.unit_flow),
            sp.denominator - 1
        );
        for head in plan.ps_points(env) {
            if inside(&point::sub(&head, &sp.unit_flow)) {
                continue;
            }
            let mut len = 0;
            let mut z = head.clone();
            while inside(&z) {
                len += 1;
                z = point::add(&z, &sp.unit_flow);
            }
            let (contents, first, last) = match (
                plan.stream_point_at(&sp.first_s, env, &head),
                plan.stream_point_at(&sp.last_s, env, &head),
            ) {
                (Some(f), Some(l)) => {
                    let n = point::exact_div(&point::sub(&l, &f), &sp.increment_s).unwrap() + 1;
                    (n, point::fmt_point(&f), point::fmt_point(&l))
                }
                _ => (0, "-".into(), "-".into()),
            };
            let _ = writeln!(
                out,
                "  pipe @{:<10} length {len:>3}, {contents:>3} element(s) {first} .. {last}",
                point::fmt_point(&head)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn map_describes_d1() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let map = describe(&plan, &env);
        assert!(map.contains("comp"));
        assert!(map.contains("load (pass"));
        assert!(map.contains("stream b (moving), unit flow 1, 1 relay(s)/edge"));
        // One pipe per stream for the 1-D array.
        assert_eq!(map.matches("pipe @").count(), 3);
    }

    #[test]
    fn map_shows_null_processes_for_e2() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 2);
        let map = describe(&plan, &env);
        assert!(map.contains("null"));
        // Null pipes exist in the corners (0 elements).
        assert!(map.contains("0 element(s)"));
        // 19 computation cells at n = 2.
        assert_eq!(map.matches("comp ").count(), 19);
    }
}
