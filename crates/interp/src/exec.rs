//! Execution of elaborated plans and equivalence checking against the
//! sequential reference — the mechanized version of the paper's Sec. 8
//! experiments (hand translations run on transputer networks and a
//! Symult s2010).

use crate::cache::ModuleStore;
use crate::elaborate::{ElabError, ElabOptions, Elaborated, OutputSpec};
use std::time::Duration;
use systolic_core::SystolicProgram;
use systolic_ir::{seq, HostStore};
use systolic_math::Env;
use systolic_runtime::{
    BatchMode, ChannelPolicy, KernelMode, KernelReport, Network, OptMode, OptReport, RunError,
    RunStats, SchedulePolicy, SharedRecorder, SinkBuffer, WavefrontMode,
};

/// Outcome of a systolic run.
pub struct SystolicRun {
    /// The host store after recovery/extraction.
    pub store: HostStore,
    pub stats: RunStats,
    pub census: crate::elaborate::Census,
    /// Whether the steady-state batching fast path actually engaged (see
    /// `systolic_runtime::batch`). Always `false` for the plain entry
    /// points; the `*_batch` variants set it when the gate admits the run.
    pub batched: bool,
    /// Whether the wavefront executor ran this module (see
    /// `systolic_runtime::wavefront`): topologically staged chunk sweeps
    /// instead of pid-order macro-sweeps. Implies `batched` — the
    /// wavefront path sits at the top of the fallback ladder
    /// wavefront → batched → plain (`docs/wavefront.md`).
    pub wavefront: bool,
    /// The `systolic-opt-v1` mapping report when the ProcIR optimizer
    /// rewrote the module this run executed (see `systolic_runtime::opt`).
    /// `None` on every `--opt off`, unbatched, or untouched-module run;
    /// when set, `stats` describes the *optimized* module — fewer
    /// processes, messages, and steps than the elaborated one, with the
    /// differences itemized in the report. The store stays bit-identical
    /// either way.
    pub opt: Option<OptReport>,
    /// The compiled-kernel engagement report when the wavefront executor
    /// ran this module (see `systolic_runtime::kernel` and
    /// `docs/kernels.md`). `Some` exactly when `wavefront` is true; with
    /// `--kernel off` the report is present but `enabled` is false and
    /// every counter is zero. Kernels change wall-clock only — stores,
    /// `messages`, and `steps` are bit-identical with the scalar path.
    pub kernel: Option<KernelReport>,
}

/// Why executing an elaborated plan failed.
#[derive(Debug)]
pub enum ExecError {
    /// The plan did not instantiate at this problem size / host store.
    Elab(ElabError),
    /// The network stopped early: deadlock, protocol violation, timeout,
    /// or an aborted worker.
    Run(RunError),
    /// An output pipe delivered a different number of elements than the
    /// plan's output map expects — a plan/elaboration bug, diagnosed
    /// instead of panicking.
    ShortOutput {
        variable: String,
        got: usize,
        want: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Elab(e) => e.fmt(f),
            ExecError::Run(e) => e.fmt(f),
            ExecError::ShortOutput {
                variable,
                got,
                want,
            } => write!(
                f,
                "output pipe for {variable} returned {got} of {want} elements"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<RunError> for ExecError {
    fn from(e: RunError) -> Self {
        ExecError::Run(e)
    }
}

impl From<ElabError> for ExecError {
    fn from(e: ElabError) -> Self {
        ExecError::Elab(e)
    }
}

/// Restore every output buffer of a finished run into the host store,
/// following the element maps of the [`OutputSpec`]s.
pub(crate) fn writeback(
    outputs: &[OutputSpec],
    buffers: &[SinkBuffer],
    store: &mut HostStore,
) -> Result<(), ExecError> {
    for out in outputs {
        let values = buffers[out.output as usize].lock();
        if values.len() != out.elements.len() {
            return Err(ExecError::ShortOutput {
                variable: out.variable.clone(),
                got: values.len(),
                want: out.elements.len(),
            });
        }
        let arr = store.get_mut(&out.variable);
        for (e, &v) in out.elements.iter().zip(values.iter()) {
            arr.set(e, v);
        }
    }
    Ok(())
}

/// Run the plan on the cooperative scheduler. `store` supplies the input
/// data; the result store contains everything the array recovered.
pub fn run_plan(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
) -> Result<SystolicRun, ExecError> {
    run_plan_recorded(plan, env, store, policy, opts, &[])
}

/// [`run_plan`] with observers attached (see `systolic_runtime::record`):
/// the recorders see every VM op, scheduler step, and channel transfer.
/// With an empty slice this is exactly `run_plan` and pays no per-event
/// cost.
pub fn run_plan_recorded(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
    recorders: &[SharedRecorder],
) -> Result<SystolicRun, ExecError> {
    run_plan_scheduled(plan, env, store, policy, opts, None, recorders)
}

/// [`run_plan_recorded`] under an explicit [`SchedulePolicy`]: the policy
/// permutes (and may defer) the cooperative scheduler's per-round channel
/// worklist. The paper's schedule-independence theorem (Sec. 4) says the
/// final store must not depend on the choice; the DST harness in
/// `systolic-sim` exercises exactly this entry point. `None` is the
/// unhooked FIFO path of [`run_plan`], bit for bit.
pub fn run_plan_scheduled(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
    sched: Option<Box<dyn SchedulePolicy>>,
    recorders: &[SharedRecorder],
) -> Result<SystolicRun, ExecError> {
    run_plan_scheduled_in(
        ModuleStore::global(),
        plan,
        env,
        store,
        policy,
        opts,
        sched,
        recorders,
    )
}

/// [`run_plan_scheduled`] against an explicit [`ModuleStore`] instead of
/// the process-wide one — the entry point services with their own cache
/// budget (and cache-isolation tests) use.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_scheduled_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
    sched: Option<Box<dyn SchedulePolicy>>,
    recorders: &[SharedRecorder],
) -> Result<SystolicRun, ExecError> {
    let cm = ms.module(plan, env, store, opts)?;
    let Elaborated {
        module,
        outputs,
        census,
        ..
    } = &cm.elab;
    let inst = module.instantiate_recorded(recorders);
    let mut net = Network::new(policy);
    if let Some(s) = sched {
        net.set_schedule_policy(s);
    }
    for r in recorders {
        net.add_recorder(r.clone());
    }
    for p in inst.procs {
        net.add(p);
    }
    let stats = net.run()?;
    let mut result = store.clone();
    writeback(outputs, &inst.outputs, &mut result)?;
    Ok(SystolicRun {
        store: result,
        stats,
        census: census.clone(),
        batched: false,
        wavefront: false,
        opt: None,
        kernel: None,
    })
}

/// Decide whether the batching fast path may replace the rendezvous
/// engine for this run. The gate is deliberately conservative — every
/// observable feature wins over speed:
///
/// - [`BatchMode::Off`] disables it outright;
/// - only [`ChannelPolicy::Rendezvous`] is eligible (the buffered
///   ablation measures a *different* protocol, not a faster one);
/// - any attached [`SharedRecorder`] forces the unbatched engine, which
///   is the one that emits per-op and per-transfer events;
/// - a [`SchedulePolicy`] other than FIFO (`is_fifo()`) perturbs the
///   worklist on purpose, so its runs stay unbatched;
/// - the module itself must pass [`systolic_runtime::analyze`].
fn batching_admissible(
    batch: BatchMode,
    policy: ChannelPolicy,
    sched: &Option<Box<dyn SchedulePolicy>>,
    recorders: &[SharedRecorder],
) -> bool {
    batch == BatchMode::Auto
        && policy == ChannelPolicy::Rendezvous
        && recorders.is_empty()
        && sched.as_ref().is_none_or(|s| s.is_fifo())
}

/// [`run_plan_scheduled`] with the steady-state batching fast path: when
/// the gate admits the configuration (see [`systolic_runtime::batch`] and
/// `docs/scheduler.md`) the rendezvous engine is replaced by macro-stepped
/// ring transfers. With `opt` off, stores are bit-identical and
/// `messages`/`steps` are invariant either way; only `rounds` (scheduler
/// sweeps) shrinks. With [`OptMode::Auto`] the ProcIR optimizer
/// (`systolic_runtime::opt`) may additionally fuse relay chains into
/// delay rings before execution — stores stay bit-identical, but the
/// stats then describe the smaller optimized module and the run carries
/// the `systolic-opt-v1` report. The optimizer rides the batching gate:
/// it never engages on a run the batch analysis (or the gate) declined,
/// so `--opt off` *and* every unbatched configuration remain exactness
/// oracles.
///
/// On top of the batched path sits the wavefront executor
/// ([`systolic_runtime::wavefront`], `docs/wavefront.md`): when
/// `wavefront` is not [`WavefrontMode::Off`] and the per-module
/// [`systolic_runtime::WavefrontPlan`] is eligible, chunked topological
/// sweeps (optionally parallel under [`WavefrontMode::Par`]) replace the
/// pid-order macro-sweep. The fallback ladder is strict — wavefront →
/// batched → plain — and every rung preserves the stores bit for bit and
/// the logical `messages`/`steps` counts; only `rounds` differs.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_batch(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
    batch: BatchMode,
    opt: OptMode,
    wavefront: WavefrontMode,
    sched: Option<Box<dyn SchedulePolicy>>,
    recorders: &[SharedRecorder],
) -> Result<SystolicRun, ExecError> {
    run_plan_batch_in(
        ModuleStore::global(),
        plan,
        env,
        store,
        policy,
        opts,
        batch,
        opt,
        wavefront,
        sched,
        recorders,
    )
}

/// [`run_plan_batch`] with an explicit [`KernelMode`]: `Off` forces the
/// wavefront executor's scalar `macro_step` sweeps even for modules with
/// a compiled kernel. The default everywhere else is [`KernelMode::Auto`].
#[allow(clippy::too_many_arguments)]
pub fn run_plan_batch_kernel(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
    batch: BatchMode,
    opt: OptMode,
    wavefront: WavefrontMode,
    kernel: KernelMode,
    sched: Option<Box<dyn SchedulePolicy>>,
    recorders: &[SharedRecorder],
) -> Result<SystolicRun, ExecError> {
    run_plan_batch_kernel_in(
        ModuleStore::global(),
        plan,
        env,
        store,
        policy,
        opts,
        batch,
        opt,
        wavefront,
        kernel,
        sched,
        recorders,
    )
}

/// [`run_plan_batch`] against an explicit [`ModuleStore`].
#[allow(clippy::too_many_arguments)]
pub fn run_plan_batch_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
    batch: BatchMode,
    opt: OptMode,
    wavefront: WavefrontMode,
    sched: Option<Box<dyn SchedulePolicy>>,
    recorders: &[SharedRecorder],
) -> Result<SystolicRun, ExecError> {
    run_plan_batch_kernel_in(
        ms,
        plan,
        env,
        store,
        policy,
        opts,
        batch,
        opt,
        wavefront,
        KernelMode::Auto,
        sched,
        recorders,
    )
}

/// [`run_plan_batch_kernel`] against an explicit [`ModuleStore`].
#[allow(clippy::too_many_arguments)]
pub fn run_plan_batch_kernel_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    policy: ChannelPolicy,
    opts: &ElabOptions,
    batch: BatchMode,
    opt: OptMode,
    wavefront: WavefrontMode,
    kernel: KernelMode,
    sched: Option<Box<dyn SchedulePolicy>>,
    recorders: &[SharedRecorder],
) -> Result<SystolicRun, ExecError> {
    if !batching_admissible(batch, policy, &sched, recorders) {
        return run_plan_scheduled_in(ms, plan, env, store, policy, opts, sched, recorders);
    }
    let cm = ms.module(plan, env, store, opts)?;
    let Elaborated {
        module,
        outputs,
        census,
        ..
    } = &cm.elab;
    let bplan = cm.batch_plan();
    if !bplan.batchable() {
        // The analysis itself declined (shared endpoint, unbalanced
        // traffic); fall through to the rendezvous engine.
        let inst = module.instantiate();
        let mut net = Network::new(policy);
        for p in inst.procs {
            net.add(p);
        }
        let stats = net.run()?;
        let mut result = store.clone();
        writeback(outputs, &inst.outputs, &mut result)?;
        return Ok(SystolicRun {
            store: result,
            stats,
            census: census.clone(),
            batched: false,
            wavefront: false,
            opt: None,
            kernel: None,
        });
    }
    if let Some(od) = cm.optimized(opt) {
        let (o, oplan) = &*od;
        if wavefront != WavefrontMode::Off {
            if let Some(wplan) = cm.wavefront_plan_opt(opt) {
                if wplan.eligible() {
                    let kp = match kernel {
                        KernelMode::Auto => cm.kernel_plan_opt(opt),
                        KernelMode::Off => None,
                    };
                    let (stats, sinks, kreport) = systolic_runtime::run_wavefront(
                        &o.module,
                        &wplan,
                        kp.as_deref(),
                        wavefront == WavefrontMode::Par,
                    )?;
                    let mut result = store.clone();
                    writeback(outputs, &sinks, &mut result)?;
                    return Ok(SystolicRun {
                        store: result,
                        stats,
                        census: census.clone(),
                        batched: true,
                        wavefront: true,
                        opt: Some(o.report.clone()),
                        kernel: Some(kreport),
                    });
                }
            }
        }
        let (stats, sinks) = systolic_runtime::run_coop_batched(&o.module, oplan)?;
        let mut result = store.clone();
        writeback(outputs, &sinks, &mut result)?;
        return Ok(SystolicRun {
            store: result,
            stats,
            census: census.clone(),
            batched: true,
            wavefront: false,
            opt: Some(o.report.clone()),
            kernel: None,
        });
    }
    if wavefront != WavefrontMode::Off {
        let wplan = cm.wavefront_plan();
        if wplan.eligible() {
            let kp = match kernel {
                KernelMode::Auto => Some(cm.kernel_plan().clone()),
                KernelMode::Off => None,
            };
            let (stats, sinks, kreport) = systolic_runtime::run_wavefront(
                module,
                wplan,
                kp.as_deref(),
                wavefront == WavefrontMode::Par,
            )?;
            let mut result = store.clone();
            writeback(outputs, &sinks, &mut result)?;
            return Ok(SystolicRun {
                store: result,
                stats,
                census: census.clone(),
                batched: true,
                wavefront: true,
                opt: None,
                kernel: Some(kreport),
            });
        }
    }
    let (stats, sinks) = systolic_runtime::run_coop_batched(module, bplan)?;
    let mut result = store.clone();
    writeback(outputs, &sinks, &mut result)?;
    Ok(SystolicRun {
        store: result,
        stats,
        census: census.clone(),
        batched: true,
        wavefront: false,
        opt: None,
        kernel: None,
    })
}

/// Run the plan on OS threads (wall-clock parallelism).
pub fn run_plan_threaded(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    timeout: Duration,
) -> Result<SystolicRun, ExecError> {
    run_plan_threaded_recorded(plan, env, store, timeout, Vec::new())
}

/// [`run_plan_threaded`] with observers attached. Transfer times are in
/// microseconds since run start; waits are not measured (no round clock).
pub fn run_plan_threaded_recorded(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
) -> Result<SystolicRun, ExecError> {
    run_plan_threaded_recorded_in(ModuleStore::global(), plan, env, store, timeout, recorders)
}

/// [`run_plan_threaded_recorded`] against an explicit [`ModuleStore`].
pub fn run_plan_threaded_recorded_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
) -> Result<SystolicRun, ExecError> {
    let cm = ms.module(plan, env, store, &ElabOptions::default())?;
    let Elaborated {
        module,
        outputs,
        census,
        ..
    } = &cm.elab;
    let inst = module.instantiate_recorded(&recorders);
    let stats = systolic_runtime::run_threaded_recorded(inst.procs, timeout, recorders)?;
    let mut result = store.clone();
    writeback(outputs, &inst.outputs, &mut result)?;
    Ok(SystolicRun {
        store: result,
        stats,
        census: census.clone(),
        batched: false,
        wavefront: false,
        opt: None,
        kernel: None,
    })
}

/// [`run_plan_threaded`] with the batching fast path: eligible runs use
/// per-channel SPSC rings under the blocking engine instead of one
/// rendezvous handshake per value. Same stats contract as
/// [`run_plan_batch`] (threaded runs report `rounds == 0` either way).
pub fn run_plan_threaded_batch(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    timeout: Duration,
    batch: BatchMode,
    opt: OptMode,
) -> Result<SystolicRun, ExecError> {
    run_plan_threaded_batch_in(ModuleStore::global(), plan, env, store, timeout, batch, opt)
}

/// [`run_plan_threaded_batch`] against an explicit [`ModuleStore`].
pub fn run_plan_threaded_batch_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    timeout: Duration,
    batch: BatchMode,
    opt: OptMode,
) -> Result<SystolicRun, ExecError> {
    if batch == BatchMode::Off {
        return run_plan_threaded_recorded_in(ms, plan, env, store, timeout, Vec::new());
    }
    let cm = ms.module(plan, env, store, &ElabOptions::default())?;
    let Elaborated {
        module,
        outputs,
        census,
        ..
    } = &cm.elab;
    let bplan = cm.batch_plan();
    if !bplan.batchable() {
        let inst = module.instantiate();
        let stats = systolic_runtime::run_threaded(inst.procs, timeout)?;
        let mut result = store.clone();
        writeback(outputs, &inst.outputs, &mut result)?;
        return Ok(SystolicRun {
            store: result,
            stats,
            census: census.clone(),
            batched: false,
            wavefront: false,
            opt: None,
            kernel: None,
        });
    }
    if let Some(od) = cm.optimized(opt) {
        let (o, oplan) = &*od;
        let (stats, sinks) = systolic_runtime::run_threaded_batched(&o.module, oplan, timeout)?;
        let mut result = store.clone();
        writeback(outputs, &sinks, &mut result)?;
        return Ok(SystolicRun {
            store: result,
            stats,
            census: census.clone(),
            batched: true,
            wavefront: false,
            opt: Some(o.report.clone()),
            kernel: None,
        });
    }
    let (stats, sinks) = systolic_runtime::run_threaded_batched(module, bplan, timeout)?;
    let mut result = store.clone();
    writeback(outputs, &sinks, &mut result)?;
    Ok(SystolicRun {
        store: result,
        stats,
        census: census.clone(),
        batched: true,
        wavefront: false,
        opt: None,
        kernel: None,
    })
}

/// Run the plan partitioned onto `workers` OS threads (the paper's
/// Sec. 8 "not enough processors" refinement): virtual processes are
/// block-assigned to workers and multiplexed cooperatively.
pub fn run_plan_partitioned(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    workers: usize,
    timeout: Duration,
) -> Result<SystolicRun, ExecError> {
    run_plan_partitioned_recorded(plan, env, store, workers, timeout, Vec::new())
}

/// [`run_plan_partitioned`] with observers attached.
pub fn run_plan_partitioned_recorded(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    workers: usize,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
) -> Result<SystolicRun, ExecError> {
    run_plan_partitioned_recorded_in(
        ModuleStore::global(),
        plan,
        env,
        store,
        workers,
        timeout,
        recorders,
    )
}

/// [`run_plan_partitioned_recorded`] against an explicit [`ModuleStore`].
pub fn run_plan_partitioned_recorded_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    workers: usize,
    timeout: Duration,
    recorders: Vec<SharedRecorder>,
) -> Result<SystolicRun, ExecError> {
    let cm = ms.module(plan, env, store, &ElabOptions::default())?;
    let Elaborated {
        module,
        outputs,
        census,
        ..
    } = &cm.elab;
    let inst = module.instantiate_recorded(&recorders);
    let groups = systolic_runtime::block_partition(inst.procs.len(), workers);
    let stats = systolic_runtime::run_partitioned_recorded(inst.procs, groups, timeout, recorders)?;
    let mut result = store.clone();
    writeback(outputs, &inst.outputs, &mut result)?;
    Ok(SystolicRun {
        store: result,
        stats,
        census: census.clone(),
        batched: false,
        wavefront: false,
        opt: None,
        kernel: None,
    })
}

/// [`run_plan_partitioned`] with the batching fast path: each worker
/// macro-steps its whole block of virtual processes per scheduling grant,
/// reusing the same per-module [`systolic_runtime::BatchPlan`] for every
/// partition. Same stats contract as [`run_plan_batch`].
pub fn run_plan_partitioned_batch(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    workers: usize,
    timeout: Duration,
    batch: BatchMode,
    opt: OptMode,
) -> Result<SystolicRun, ExecError> {
    run_plan_partitioned_batch_in(
        ModuleStore::global(),
        plan,
        env,
        store,
        workers,
        timeout,
        batch,
        opt,
    )
}

/// [`run_plan_partitioned_batch`] against an explicit [`ModuleStore`].
#[allow(clippy::too_many_arguments)]
pub fn run_plan_partitioned_batch_in(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    workers: usize,
    timeout: Duration,
    batch: BatchMode,
    opt: OptMode,
) -> Result<SystolicRun, ExecError> {
    if batch == BatchMode::Off {
        return run_plan_partitioned_recorded_in(
            ms, plan, env, store, workers, timeout,
            Vec::new(),
        );
    }
    let cm = ms.module(plan, env, store, &ElabOptions::default())?;
    let Elaborated {
        module,
        outputs,
        census,
        ..
    } = &cm.elab;
    let bplan = cm.batch_plan();
    if !bplan.batchable() {
        let inst = module.instantiate();
        let groups = systolic_runtime::block_partition(inst.procs.len(), workers);
        let stats = systolic_runtime::run_partitioned(inst.procs, groups, timeout)?;
        let mut result = store.clone();
        writeback(outputs, &inst.outputs, &mut result)?;
        return Ok(SystolicRun {
            store: result,
            stats,
            census: census.clone(),
            batched: false,
            wavefront: false,
            opt: None,
            kernel: None,
        });
    }
    if let Some(od) = cm.optimized(opt) {
        let (o, oplan) = &*od;
        let groups = systolic_runtime::block_partition(o.module.procs.len(), workers);
        let (stats, sinks) =
            systolic_runtime::run_partitioned_batched(&o.module, oplan, groups, timeout)?;
        let mut result = store.clone();
        writeback(outputs, &sinks, &mut result)?;
        return Ok(SystolicRun {
            store: result,
            stats,
            census: census.clone(),
            batched: true,
            wavefront: false,
            opt: Some(o.report.clone()),
            kernel: None,
        });
    }
    let groups = systolic_runtime::block_partition(module.procs.len(), workers);
    let (stats, sinks) = systolic_runtime::run_partitioned_batched(module, bplan, groups, timeout)?;
    let mut result = store.clone();
    writeback(outputs, &sinks, &mut result)?;
    Ok(SystolicRun {
        store: result,
        stats,
        census: census.clone(),
        batched: true,
        wavefront: false,
        opt: None,
        kernel: None,
    })
}

/// The end-to-end equivalence experiment: fill the named input variables
/// with seeded data, run both the sequential reference and the systolic
/// program, and compare every variable of the store.
pub fn verify_equivalence(
    plan: &SystolicProgram,
    env: &Env,
    inputs: &[&str],
    seed: u64,
) -> Result<RunStats, String> {
    verify_equivalence_with(plan, env, inputs, seed, &ElabOptions::default())
}

/// [`verify_equivalence`] through [`run_plan_batch`]: same experiment,
/// optionally on the batching fast path, the wavefront executor, and/or
/// the ProcIR optimizer. Returns the stats, whether batching actually
/// engaged, whether the wavefront executor ran, and the optimizer's
/// mapping report when it rewrote the module, so callers (the CLI, the
/// trajectory bench) can report which engine and module shape produced
/// the — identical — result.
pub fn verify_equivalence_batch(
    plan: &SystolicProgram,
    env: &Env,
    inputs: &[&str],
    seed: u64,
    batch: BatchMode,
    opt: OptMode,
    wavefront: WavefrontMode,
) -> Result<(RunStats, bool, bool, Option<OptReport>), String> {
    let (stats, batched, wf, opt, _) = verify_equivalence_batch_kernel(
        plan,
        env,
        inputs,
        seed,
        batch,
        opt,
        wavefront,
        KernelMode::Auto,
    )?;
    Ok((stats, batched, wf, opt))
}

/// [`verify_equivalence_batch`] with an explicit [`KernelMode`], also
/// returning the kernel engagement report (`None` when the wavefront
/// executor did not run). The CLI and the trajectory bench use this to
/// report whether the vectorized wave path actually fused any waves.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn verify_equivalence_batch_kernel(
    plan: &SystolicProgram,
    env: &Env,
    inputs: &[&str],
    seed: u64,
    batch: BatchMode,
    opt: OptMode,
    wavefront: WavefrontMode,
    kernel: KernelMode,
) -> Result<
    (
        RunStats,
        bool,
        bool,
        Option<OptReport>,
        Option<KernelReport>,
    ),
    String,
> {
    let mut store = HostStore::allocate(&plan.source, env);
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    let mut expected = store.clone();
    seq::run(&plan.source, env, &mut expected);

    let run = run_plan_batch_kernel(
        plan,
        env,
        &store,
        ChannelPolicy::Rendezvous,
        &ElabOptions::default(),
        batch,
        opt,
        wavefront,
        kernel,
        None,
        &[],
    )
    .map_err(|d| d.to_string())?;
    for name in expected.names() {
        if run.store.get(name) != expected.get(name) {
            return Err(format!(
                "variable {name} differs between sequential and systolic execution"
            ));
        }
    }
    Ok((run.stats, run.batched, run.wavefront, run.opt, run.kernel))
}

/// Why a cross-executor differential check failed, with the engine
/// label preserved structurally: service-side differential checks key
/// their diagnostics on *which* executor misbehaved, which a flat
/// `String` loses.
#[derive(Clone, Debug)]
pub enum VerifyError {
    /// Elaboration (or store writeback) failed before the engines could
    /// be compared.
    Setup { message: String },
    /// The named engine stopped with a runtime diagnosis.
    Engine {
        engine: &'static str,
        error: RunError,
    },
    /// The named engine completed, but its store disagrees with the
    /// sequential reference on `variable`.
    Divergence {
        engine: &'static str,
        variable: String,
    },
}

impl VerifyError {
    /// The executor label the failure is attributed to, when one is.
    pub fn engine(&self) -> Option<&'static str> {
        match self {
            VerifyError::Setup { .. } => None,
            VerifyError::Engine { engine, .. } | VerifyError::Divergence { engine, .. } => {
                Some(engine)
            }
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Setup { message } => write!(f, "{message}"),
            VerifyError::Engine { engine, error } => write!(f, "{engine}: {error}"),
            VerifyError::Divergence { engine, variable } => write!(
                f,
                "{engine}: variable {variable} differs between sequential and systolic execution"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The cross-executor oracle experiment off **one** elaboration: fill
/// the inputs, run the sequential reference, then run the cooperative,
/// threaded, partitioned, and wavefront engines against the same shared
/// [`Arc<ProcIrModule>`](systolic_runtime::ProcIrModule) — one
/// instantiation per engine, zero re-elaborations — and require every
/// store to match the reference. Returns the labeled runs so callers
/// can additionally compare the executors against each other
/// (`tests/oracle.rs` does). The wavefront entry uses the memoized
/// [`systolic_runtime::WavefrontPlan`] when the module is eligible and
/// falls back to a plain rendezvous run otherwise, so the label list is
/// always `["coop", "threaded", "partitioned", "wavefront"]`. Failures
/// come back as a [`VerifyError`] that names the diverging engine.
pub fn verify_equivalence_all(
    plan: &SystolicProgram,
    env: &Env,
    inputs: &[&str],
    seed: u64,
    workers: usize,
    timeout: Duration,
) -> Result<Vec<(&'static str, SystolicRun)>, VerifyError> {
    let mut store = HostStore::allocate(&plan.source, env);
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    let mut expected = store.clone();
    seq::run(&plan.source, env, &mut expected);

    let cm = ModuleStore::global()
        .module(plan, env, &store, &ElabOptions::default())
        .map_err(|e| VerifyError::Setup {
            message: e.to_string(),
        })?;
    let el = &cm.elab;
    let finish = |engine: &'static str,
                  stats: RunStats,
                  sinks: &[SinkBuffer]|
     -> Result<SystolicRun, VerifyError> {
        let mut result = store.clone();
        writeback(&el.outputs, sinks, &mut result).map_err(|e| VerifyError::Setup {
            message: format!("{engine}: {e}"),
        })?;
        Ok(SystolicRun {
            store: result,
            stats,
            census: el.census.clone(),
            batched: false,
            wavefront: false,
            opt: None,
            kernel: None,
        })
    };
    let engine_err = |engine: &'static str| move |error: RunError| VerifyError::Engine { engine, error };

    let mut runs: Vec<(&'static str, SystolicRun)> = Vec::new();
    {
        let inst = el.module.instantiate();
        let mut net = Network::new(ChannelPolicy::Rendezvous);
        for p in inst.procs {
            net.add(p);
        }
        let stats = net.run().map_err(engine_err("coop"))?;
        runs.push(("coop", finish("coop", stats, &inst.outputs)?));
    }
    {
        let inst = el.module.instantiate();
        let stats =
            systolic_runtime::run_threaded(inst.procs, timeout).map_err(engine_err("threaded"))?;
        runs.push(("threaded", finish("threaded", stats, &inst.outputs)?));
    }
    {
        let inst = el.module.instantiate();
        let groups = systolic_runtime::block_partition(inst.procs.len(), workers);
        let stats = systolic_runtime::run_partitioned(inst.procs, groups, timeout)
            .map_err(engine_err("partitioned"))?;
        runs.push(("partitioned", finish("partitioned", stats, &inst.outputs)?));
    }
    {
        let wplan = cm.wavefront_plan();
        if wplan.eligible() {
            // Kernels engage here too: the oracle then covers the
            // vectorized wave path on every gallery design for free.
            let kp = cm.kernel_plan();
            let (stats, sinks, kreport) =
                systolic_runtime::run_wavefront(&el.module, wplan, Some(&**kp), false)
                    .map_err(engine_err("wavefront"))?;
            let mut run = finish("wavefront", stats, &sinks)?;
            run.batched = true;
            run.wavefront = true;
            run.kernel = Some(kreport);
            runs.push(("wavefront", run));
        } else {
            // Ineligible module: the ladder bottoms out at the plain
            // rendezvous engine, still under the wavefront label so the
            // oracle always compares four executors.
            let inst = el.module.instantiate();
            let mut net = Network::new(ChannelPolicy::Rendezvous);
            for p in inst.procs {
                net.add(p);
            }
            let stats = net.run().map_err(engine_err("wavefront"))?;
            runs.push(("wavefront", finish("wavefront", stats, &inst.outputs)?));
        }
    }

    for (label, run) in &runs {
        for name in expected.names() {
            if run.store.get(name) != expected.get(name) {
                return Err(VerifyError::Divergence {
                    engine: label,
                    variable: name.to_string(),
                });
            }
        }
    }
    Ok(runs)
}

/// [`verify_equivalence`] under explicit elaboration options (protocol
/// variants, ablations).
pub fn verify_equivalence_with(
    plan: &SystolicProgram,
    env: &Env,
    inputs: &[&str],
    seed: u64,
    opts: &ElabOptions,
) -> Result<RunStats, String> {
    let mut store = HostStore::allocate(&plan.source, env);
    for (i, name) in inputs.iter().enumerate() {
        store.fill_random(name, seed.wrapping_add(i as u64), -9, 9);
    }
    let mut expected = store.clone();
    seq::run(&plan.source, env, &mut expected);

    let run =
        run_plan(plan, env, &store, ChannelPolicy::Rendezvous, opts).map_err(|d| d.to_string())?;
    for name in expected.names() {
        if run.store.get(name) != expected.get(name) {
            return Err(format!(
                "variable {name} differs between sequential and systolic execution"
            ));
        }
    }
    Ok(run.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    fn size_env(plan: &SystolicProgram, n: i64) -> Env {
        let mut env = Env::new();
        for &s in &plan.source.sizes {
            env.bind(s, n);
        }
        env
    }

    #[test]
    fn d1_executes_correctly() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        for n in 1..=6 {
            let env = size_env(&plan, n);
            verify_equivalence(&plan, &env, &["a", "b"], 42 + n as u64)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn d2_executes_correctly() {
        let (p, a) = paper::polyprod_d2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        for n in 1..=6 {
            let env = size_env(&plan, n);
            verify_equivalence(&plan, &env, &["a", "b"], 7 + n as u64)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn e1_executes_correctly() {
        let (p, a) = paper::matmul_e1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        for n in 1..=4 {
            let env = size_env(&plan, n);
            verify_equivalence(&plan, &env, &["a", "b"], 100 + n as u64)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn e2_executes_correctly() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        for n in 1..=4 {
            let env = size_env(&plan, n);
            verify_equivalence(&plan, &env, &["a", "b"], 200 + n as u64)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn one_elaboration_backs_many_runs() {
        // The module is immutable: instantiate twice, run twice, get the
        // same stats and outputs (the Arc<ProcIrModule> caching story).
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = size_env(&plan, 4);
        let mut store = HostStore::allocate(&plan.source, &env);
        store.fill_random("a", 3, -9, 9);
        store.fill_random("b", 4, -9, 9);
        let el = crate::elaborate::elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        let mut runs = Vec::new();
        for _ in 0..2 {
            let inst = el.module.instantiate();
            let mut net = Network::new(ChannelPolicy::Rendezvous);
            for pr in inst.procs {
                net.add(pr);
            }
            let stats = net.run().unwrap();
            let bufs: Vec<Vec<i64>> = inst.outputs.iter().map(|b| b.lock().clone()).collect();
            runs.push((stats, bufs));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn threaded_executor_agrees() {
        let (p, a) = paper::matmul_e1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let n = 3;
        let env = size_env(&plan, n);
        let mut store = HostStore::allocate(&plan.source, &env);
        store.fill_random("a", 5, -9, 9);
        store.fill_random("b", 6, -9, 9);
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);
        let run = run_plan_threaded(&plan, &env, &store, Duration::from_secs(30)).unwrap();
        assert_eq!(run.store.get("c"), expected.get("c"));
        assert_eq!(
            run.store.get("a"),
            expected.get("a"),
            "a recovered unchanged"
        );
    }

    #[test]
    fn partitioned_executor_agrees_for_every_worker_count() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let n = 2;
        let env = size_env(&plan, n);
        let mut store = HostStore::allocate(&plan.source, &env);
        store.fill_random("a", 8, -9, 9);
        store.fill_random("b", 9, -9, 9);
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);
        for workers in [1usize, 2, 4, 16] {
            let run = run_plan_partitioned(&plan, &env, &store, workers, Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
            assert_eq!(run.store.get("c"), expected.get("c"), "workers={workers}");
            assert_eq!(run.store.get("a"), expected.get("a"), "workers={workers}");
        }
    }

    #[test]
    fn internal_buffer_ablation() {
        // D.1's stream b has flow 1/2; Sec. 7.6 inserts one buffer per
        // edge to realize the half-speed movement of the synchronous
        // schedule. The *asynchronous* semantics tolerates their removal
        // (results stay correct — rendezvous never loses FIFO order), but
        // the timing changes: the buffers add pipeline slack. We verify
        // correctness in both configurations and that the round counts
        // differ, which is what the ablation benchmark measures.
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = size_env(&plan, 5);
        let mut store = HostStore::allocate(&plan.source, &env);
        store.fill_random("a", 1, -5, 5);
        store.fill_random("b", 2, -5, 5);
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);

        let with = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
        )
        .unwrap();
        let without = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Rendezvous,
            &ElabOptions {
                internal_buffers: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(with.store.get("c"), expected.get("c"));
        assert_eq!(without.store.get("c"), expected.get("c"));
        assert!(with.census.internal_buffers > 0);
        assert_eq!(without.census.internal_buffers, 0);
        assert_ne!(with.stats.rounds, without.stats.rounds, "timing differs");
    }

    #[test]
    fn buffered_channels_also_work() {
        let (p, a) = paper::polyprod_d2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = size_env(&plan, 4);
        let mut store = HostStore::allocate(&plan.source, &env);
        store.fill_random("a", 3, -5, 5);
        store.fill_random("b", 4, -5, 5);
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);
        let run = run_plan(
            &plan,
            &env,
            &store,
            ChannelPolicy::Buffered(4),
            &ElabOptions::default(),
        )
        .unwrap();
        assert_eq!(run.store.get("c"), expected.get("c"));
    }

    #[test]
    fn gallery_programs_execute_via_derived_arrays() {
        use systolic_ir::gallery;
        for p in gallery::all() {
            let a = systolic_synthesis::derive_array(&p, 2, 4).unwrap();
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let mut env = Env::new();
            for &s in &p.sizes {
                env.bind(s, 3);
            }
            let inputs: Vec<&str> = match p.name.as_str() {
                "fir_filter" => vec!["h", "x"],
                _ => vec!["a", "b"],
            };
            verify_equivalence(&plan, &env, &inputs, 11)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn short_output_pipe_is_a_descriptive_error() {
        // A spec expecting two elements whose pipe delivered one.
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let env = size_env(&plan, 2);
        let mut store = HostStore::allocate(&plan.source, &env);
        let buffer = systolic_runtime::sink_buffer();
        buffer.lock().push(7);
        let outputs = vec![OutputSpec {
            variable: "c".into(),
            elements: vec![vec![0], vec![1]],
            output: 0,
        }];
        let err = writeback(&outputs, &[buffer], &mut store).unwrap_err();
        let ExecError::ShortOutput {
            variable,
            got,
            want,
        } = &err
        else {
            panic!("expected ShortOutput, got {err}");
        };
        assert_eq!((variable.as_str(), *got, *want), ("c", 1, 2));
        assert!(err.to_string().contains("returned 1 of 2"));
    }

    #[test]
    fn makespan_is_linear_not_cubic() {
        // The headline claim: the systolic program's virtual clock grows
        // linearly in n while sequential work grows cubically (matmul).
        let (p, a) = paper::matmul_e1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut rounds = Vec::new();
        for n in [2i64, 4, 6] {
            let env = size_env(&plan, n);
            let stats = verify_equivalence(&plan, &env, &["a", "b"], 1).unwrap();
            rounds.push((n, stats.rounds));
        }
        // Roughly linear: rounds(6)/rounds(2) well below (6/2)^3 = 27.
        let ratio = rounds[2].1 as f64 / rounds[0].1 as f64;
        assert!(ratio < 9.0, "rounds {rounds:?} grew superlinearly");
    }
}
