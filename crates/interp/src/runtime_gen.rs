//! The run-time code-generation baseline (ablation B3d).
//!
//! Sec. 8 situates the paper on a spectrum: "generation at run time has
//! each process determine the identity and ordering of its statements
//! from the loop bounds specified in the source program and its
//! coordinates in the process space. This is done either as a separate
//! phase before execution or interleaved with it [3, 25]. At the other
//! end of the spectrum is our approach."
//!
//! This module implements the *other* end: given only the source program
//! and the array (no compiled plan), every per-process quantity — chord,
//! soak/drain counts, pipe contents — is recovered by scanning the index
//! space, once per process, exactly as a run-time generator would. The
//! outputs must agree with the compiled plan (tested), and the scan cost
//! is what the benchmark compares against plan evaluation.

use crate::elaborate::Elaborated;
use std::collections::{BTreeSet, HashMap};
use systolic_core::{StreamKind, SystolicProgram};
use systolic_math::{point, Env};
use systolic_runtime::{ChanId, OptimizedModule, ProcOp};

/// Everything one process needs, derived by brute-force scan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScannedProcess {
    /// The chord in step order (empty for null processes).
    pub chord: Vec<Vec<i64>>,
    /// Per stream: (soak, used, drain) counts along its pipe.
    pub propagation: Vec<(i64, i64, i64)>,
}

/// Scan the whole index space once and derive per-process data for every
/// process-space point — the run-time generator's "separate phase before
/// execution". Returns the map and the number of index points visited
/// (the work metric).
pub fn scan(plan: &SystolicProgram, env: &Env) -> (HashMap<Vec<i64>, ScannedProcess>, usize) {
    let mut out: HashMap<Vec<i64>, ScannedProcess> = HashMap::new();
    let n_streams = plan.streams.len();
    for y in plan.ps_points(env) {
        out.insert(
            y,
            ScannedProcess {
                chord: Vec::new(),
                propagation: vec![(0, 0, 0); n_streams],
            },
        );
    }
    // Pass 1: chords.
    let mut visited = 0usize;
    for x in plan.source.index_space_seq(env) {
        visited += 1;
        let y = plan.array.place_at(&x);
        out.get_mut(&y)
            .expect("place image inside PS")
            .chord
            .push(x);
    }
    for sp in out.values_mut() {
        let step = &plan.array.step;
        sp.chord.sort_by_key(|x| point::dot(step, x));
    }

    // Pass 2: per-stream pipe propagation. For each pipe (chain along the
    // stream's unit flow), order the pipe's elements by increment_s and
    // count, for each process, how many elements precede its first used
    // element and follow its last.
    let ps = plan.ps_box(env);
    let inside = |p: &[i64]| p.iter().zip(&ps).all(|(&x, &(lo, hi))| x >= lo && x <= hi);
    let ys: Vec<Vec<i64>> = out.keys().cloned().collect();
    for (k, spn) in plan.streams.iter().enumerate() {
        let m = &plan.source.stream(spn.id).index_map;
        for head in &ys {
            if inside(&point::sub(head, &spn.unit_flow)) {
                continue;
            }
            // Collect the chain and every element used along it.
            let mut chain = Vec::new();
            let mut z = head.clone();
            while inside(&z) {
                chain.push(z.clone());
                z = point::add(&z, &spn.unit_flow);
            }
            let mut elems: Vec<Vec<i64>> = Vec::new();
            for z in &chain {
                for x in &out[z].chord {
                    let e = m.apply_int(x);
                    if !elems.contains(&e) {
                        elems.push(e);
                    }
                }
            }
            // Order along increment_s.
            elems.sort_by_key(|e| point::dot(&spn.increment_s, e));
            let rank: HashMap<&Vec<i64>, i64> = elems
                .iter()
                .enumerate()
                .map(|(i, e)| (e, i as i64))
                .collect();
            let total = elems.len() as i64;
            for z in &chain {
                let used: Vec<i64> = out[z].chord.iter().map(|x| rank[&m.apply_int(x)]).collect();
                let prop = if used.is_empty() {
                    (0, 0, 0)
                } else {
                    let lo = *used.iter().min().unwrap();
                    let hi = *used.iter().max().unwrap();
                    let distinct = if matches!(spn.kind, StreamKind::Stationary { .. }) {
                        1
                    } else {
                        hi - lo + 1
                    };
                    (lo, distinct, total - 1 - hi)
                };
                out.get_mut(z).unwrap().propagation[k] = prop;
            }
        }
    }
    (out, visited)
}

/// Check the scan against the compiled plan at a size: chords, soak and
/// drain counts must agree everywhere. Returns the number of processes
/// compared.
pub fn agree_with_plan(plan: &SystolicProgram, env: &Env) -> Result<usize, String> {
    let (scanned, _) = scan(plan, env);
    let mut compared = 0;
    for (y, sp) in &scanned {
        let chord = plan.chord_at(env, y);
        if chord != sp.chord {
            return Err(format!(
                "chord mismatch at {y:?}: plan {chord:?} vs scan {:?}",
                sp.chord
            ));
        }
        for (k, spn) in plan.streams.iter().enumerate() {
            if chord.is_empty() {
                continue;
            }
            let soak = plan.stream_count_at(&spn.soak, env, y);
            let drain = plan.stream_count_at(&spn.drain, env, y);
            let (s, _, d) = sp.propagation[k];
            if (soak, drain) != (s, d) {
                return Err(format!(
                    "stream {} at {y:?}: plan soak/drain ({soak},{drain}) vs scan ({s},{d})",
                    spn.name
                ));
            }
        }
        compared += 1;
    }
    Ok(compared)
}

/// Check the scan against the *lowered bytecode*: for every computation
/// process, the repeater count and the per-stream pass totals encoded in
/// its [`ProcOp`] list must match what a run-time generator derives from
/// the index space alone. This closes the loop scan → plan → ProcIR: the
/// flat bytecode carries exactly the statically-determined trace.
/// Returns the number of computation processes compared.
pub fn agree_with_procir(
    plan: &SystolicProgram,
    env: &Env,
    el: &Elaborated,
) -> Result<usize, String> {
    let (scanned, _) = scan(plan, env);
    let module = &el.module;
    let mut compared = 0;
    for (y, pid) in &el.comp_at {
        let sp = scanned
            .get(y)
            .ok_or_else(|| format!("comp process at {y:?} missing from the scan"))?;
        let ops = module.ops_of(*pid);
        let moving = module.moving_of(*pid);
        // Decode the op list: pass totals per input channel, split at the
        // repeater, plus the keep channel of each stationary slot.
        let mut keep_chan: HashMap<u32, ChanId> = HashMap::new();
        let mut pre: HashMap<ChanId, i64> = HashMap::new();
        let mut post: HashMap<ChanId, i64> = HashMap::new();
        let mut count: Option<u64> = None;
        for op in ops {
            match *op {
                ProcOp::Keep { chan, slot } => {
                    keep_chan.insert(slot, chan);
                }
                ProcOp::Pass { inp, n, .. } => {
                    *if count.is_some() {
                        post.entry(inp)
                    } else {
                        pre.entry(inp)
                    }
                    .or_default() += n as i64;
                }
                ProcOp::Compute { count: c } => count = Some(c),
                ProcOp::Eject { .. } | ProcOp::Emit { .. } | ProcOp::Collect { .. } => {}
            }
        }
        let count = count.ok_or_else(|| format!("no repeater in the ops of comp at {y:?}"))?;
        if count as usize != sp.chord.len() {
            return Err(format!(
                "repeater count at {y:?}: bytecode {count} vs scanned chord {}",
                sp.chord.len()
            ));
        }
        for (k, spn) in plan.streams.iter().enumerate() {
            let (s, _, d) = sp.propagation[k];
            let at = |m: &HashMap<ChanId, i64>, c: ChanId| m.get(&c).copied().unwrap_or(0);
            match spn.kind {
                StreamKind::Moving => {
                    let link = moving.iter().find(|l| l.slot == k as u32).ok_or_else(|| {
                        format!("stream {} has no moving link at {y:?}", spn.name)
                    })?;
                    if (at(&pre, link.inp), at(&post, link.inp)) != (s, d) {
                        return Err(format!(
                            "stream {} at {y:?}: bytecode soak/drain ({},{}) vs scan ({s},{d})",
                            spn.name,
                            at(&pre, link.inp),
                            at(&post, link.inp)
                        ));
                    }
                }
                StreamKind::Stationary { .. } => {
                    // Load passes the `drain` later elements through; the
                    // recovery passes the `soak` earlier ones before the
                    // eject.
                    let chan = *keep_chan
                        .get(&(k as u32))
                        .ok_or_else(|| format!("stream {} has no keep at {y:?}", spn.name))?;
                    if (at(&pre, chan), at(&post, chan)) != (d, s) {
                        return Err(format!(
                            "stationary {} at {y:?}: bytecode load/recover passes ({},{}) vs scan ({d},{s})",
                            spn.name,
                            at(&pre, chan),
                            at(&post, chan)
                        ));
                    }
                }
            }
        }
        compared += 1;
    }
    Ok(compared)
}

/// Extend the agreement check to an *optimized* module: run
/// [`agree_with_procir`] on the pre-opt elaboration (the optimizer never
/// changes what was compiled, only how it executes), then reconcile the
/// `systolic-opt-v1` mapping report against both modules so codegen can
/// trust it. Verified here: shape counts, an injective+dense process
/// map that preserves labels, deleted processes being exactly the fused
/// relays (and transport-only: no `Compute`/`Emit`/`Collect`, no host
/// output), every computation process surviving with its repeater, and
/// each chain's entry channel surviving as the delay ring while its
/// exit channel is deleted. Returns the number of computation processes
/// compared by the base check.
pub fn agree_with_opt(
    plan: &SystolicProgram,
    env: &Env,
    el: &Elaborated,
    o: &OptimizedModule,
) -> Result<usize, String> {
    let compared = agree_with_procir(plan, env, el)?;
    let r = &o.report;
    let pre = &el.module;
    let post = &o.module;
    let shape = [
        ("processes_before", r.processes_before, pre.procs.len()),
        ("processes_after", r.processes_after, post.procs.len()),
        ("channels_before", r.channels_before, pre.n_chans),
        ("channels_after", r.channels_after, post.n_chans),
        ("proc_map length", r.proc_map.len(), pre.procs.len()),
        ("chan_map length", r.chan_map.len(), pre.n_chans),
    ];
    for (what, got, want) in shape {
        if got != want {
            return Err(format!("report {what}: {got} vs module {want}"));
        }
    }

    // The process map must be injective onto the post module, dense
    // (every surviving process has a preimage), and label-preserving.
    let mut preimage: Vec<Option<usize>> = vec![None; post.procs.len()];
    for (pid, m) in r.proc_map.iter().enumerate() {
        let Some(q) = *m else { continue };
        if q >= post.procs.len() {
            return Err(format!("proc_map[{pid}] = {q} out of range"));
        }
        if let Some(prev) = preimage[q] {
            return Err(format!("proc_map sends both {prev} and {pid} to {q}"));
        }
        preimage[q] = Some(pid);
        if pre.label_of(pid) != post.label_of(q) {
            return Err(format!(
                "label changed across the map: {:?} -> {:?}",
                pre.label_of(pid),
                post.label_of(q)
            ));
        }
    }
    if let Some(q) = preimage.iter().position(|p| p.is_none()) {
        return Err(format!("post process {q} has no preimage in proc_map"));
    }

    // Deleted processes are exactly the chains' relays, and each was
    // transport-only in the pre-opt module.
    let relays: BTreeSet<usize> = r.chains.iter().flat_map(|c| c.relays.clone()).collect();
    for (pid, m) in r.proc_map.iter().enumerate() {
        match (m.is_some(), relays.contains(&pid)) {
            (false, false) => {
                return Err(format!("process {pid} deleted but not in any chain"));
            }
            (true, true) => {
                return Err(format!("process {pid} is a chain relay yet survives"));
            }
            _ => {}
        }
        if m.is_none() {
            let transport = pre.ops_of(pid).iter().all(|op| {
                matches!(
                    op,
                    ProcOp::Pass { .. }
                        | ProcOp::Keep { .. }
                        | ProcOp::Eject { .. }
                        | ProcOp::Compute { count: 0 }
                )
            });
            if !transport || pre.procs[pid].output.is_some() {
                return Err(format!("fused process {pid} was not transport-only"));
            }
        }
    }

    // Every computation process survives, repeater intact.
    for (y, pid) in &el.comp_at {
        let q = r.proc_map[*pid]
            .ok_or_else(|| format!("computation process at {y:?} was fused away"))?;
        let count = |ops: &[ProcOp]| {
            ops.iter()
                .filter_map(|op| match op {
                    ProcOp::Compute { count } => Some(*count),
                    _ => None,
                })
                .sum::<u64>()
        };
        let (a, b) = (count(pre.ops_of(*pid)), count(post.ops_of(q)));
        if a != b {
            return Err(format!("comp at {y:?}: repeater {a} became {b}"));
        }
    }

    // Chain channel bookkeeping: entry survives as the ring, exit (and
    // everything interior) is gone, and the granted capacity is the one
    // the batch analysis will see.
    for (i, c) in r.chains.iter().enumerate() {
        if r.chan_map.get(c.entry).copied().flatten() != Some(c.surviving) {
            return Err(format!(
                "chain {i}: entry {} does not survive as {}",
                c.entry, c.surviving
            ));
        }
        if r.chan_map.get(c.exit).copied().flatten().is_some() {
            return Err(format!("chain {i}: exit channel {} survives", c.exit));
        }
        if c.capacity < 1 {
            return Err(format!("chain {i}: zero-capacity delay ring"));
        }
        if o.chan_caps.get(c.surviving).copied().unwrap_or(0) < c.capacity {
            return Err(format!(
                "chain {i}: chan_caps[{}] below the granted capacity {}",
                c.surviving, c.capacity
            ));
        }
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::{elaborate, ElabOptions};
    use systolic_core::{compile, Options};
    use systolic_ir::HostStore;
    use systolic_synthesis::placement::paper;

    #[test]
    fn scan_agrees_with_the_lowered_bytecode_on_all_designs() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            for n in [2i64, 4] {
                let mut env = Env::new();
                env.bind(p.sizes[0], n);
                let store = HostStore::allocate(&p, &env);
                let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
                let compared = agree_with_procir(&plan, &env, &el)
                    .unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
                assert_eq!(compared, el.comp_at.len());
                assert!(compared > 0);
            }
        }
    }

    #[test]
    fn agreement_extends_to_optimized_modules_on_all_designs() {
        use systolic_runtime::OptMode;
        let mut optimized_somewhere = false;
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            for n in [2i64, 4] {
                let mut env = Env::new();
                env.bind(p.sizes[0], n);
                let store = HostStore::allocate(&p, &env);
                let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
                let Some(o) = el.optimize(OptMode::Auto) else {
                    continue;
                };
                optimized_somewhere = true;
                let compared = agree_with_opt(&plan, &env, &el, &o)
                    .unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
                assert_eq!(compared, el.comp_at.len());
            }
        }
        assert!(
            optimized_somewhere,
            "no paper design produced an optimized module"
        );
    }

    #[test]
    fn a_corrupted_report_fails_the_agreement_check() {
        use systolic_runtime::OptMode;
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let store = HostStore::allocate(&p, &env);
        let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        let mut o = el.optimize(OptMode::Auto).expect("E.2 has relay chains");
        assert!(agree_with_opt(&plan, &env, &el, &o).is_ok());
        // Claim a computation process was fused away.
        let victim = el.comp_at[0].1;
        o.report.proc_map[victim] = None;
        let err = agree_with_opt(&plan, &env, &el, &o).unwrap_err();
        assert!(err.contains("has no preimage"), "{err}");
    }

    #[test]
    fn scan_agrees_with_the_compiled_plan_on_all_designs() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            for n in [2i64, 4] {
                let mut env = Env::new();
                env.bind(p.sizes[0], n);
                let compared =
                    agree_with_plan(&plan, &env).unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
                assert!(compared > 0);
            }
        }
    }

    #[test]
    fn scan_work_grows_with_the_index_space() {
        let (p, a) = paper::matmul_e1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let (_, visited3) = scan(&plan, &env);
        env.bind(p.sizes[0], 6);
        let (_, visited6) = scan(&plan, &env);
        assert_eq!(visited3, 64);
        assert_eq!(visited6, 343);
    }
}
