//! A *runnable* back end: generate a standalone, self-checking Rust
//! program (std threads + `sync_channel`) from a compiled plan at a
//! concrete problem size.
//!
//! This mechanizes the paper's Sec. 8 experiment — "we have
//! hand-translated our example programs for execution on several
//! parallel computers" — end to end: the translation is generated, the
//! target language is real, and the generated program embeds its own
//! input data and the sequentially-computed expected results, asserting
//! equality at exit. The tests compile the output with `rustc` and run
//! it.
//!
//! Channels use capacity-1 `sync_channel`s: the paper counts the
//! synchronous channel as "a buffer of size 1" (Sec. 7.6), and our
//! buffered-channel property tests show capacity is semantically inert,
//! so the generated program's sequentialized sends (a thread cannot
//! offer a `par` set) stay deadlock-free where the abstract program is.
//!
//! The network topology below mirrors [`crate::elaborate`]; the two are
//! kept in sync by the end-to-end tests (same pipes, same counts).

use std::collections::HashMap;
use std::fmt::Write as _;
use systolic_core::{StreamKind, SystolicProgram};
use systolic_ir::{seq, HostStore, ScalarExpr, SourceProgram};
use systolic_math::{point, Env};

/// Render the basic statement body as Rust over locals `l0..` and the
/// index point `x`.
#[allow(clippy::only_used_in_recursion)] // src kept for symmetry with rust_bool
fn rust_scalar(src: &SourceProgram, e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Stream(s) => format!("l{}", s.0),
        ScalarExpr::Index(i) => format!("x[{i}]"),
        ScalarExpr::Const(c) => format!("{c}i64"),
        ScalarExpr::Add(a, b) => format!("({} + {})", rust_scalar(src, a), rust_scalar(src, b)),
        ScalarExpr::Sub(a, b) => format!("({} - {})", rust_scalar(src, a), rust_scalar(src, b)),
        ScalarExpr::Mul(a, b) => format!("({} * {})", rust_scalar(src, a), rust_scalar(src, b)),
        ScalarExpr::Min(a, b) => {
            format!("({}).min({})", rust_scalar(src, a), rust_scalar(src, b))
        }
        ScalarExpr::Max(a, b) => {
            format!("({}).max({})", rust_scalar(src, a), rust_scalar(src, b))
        }
        ScalarExpr::Neg(a) => format!("(-{})", rust_scalar(src, a)),
    }
}

fn rust_bool(src: &SourceProgram, b: &systolic_ir::BoolExpr) -> String {
    use systolic_ir::{BoolExpr, CmpOp};
    match b {
        BoolExpr::Cmp(op, a, c) => {
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {} {})", rust_scalar(src, a), sym, rust_scalar(src, c))
        }
        BoolExpr::And(a, c) => format!("({} && {})", rust_bool(src, a), rust_bool(src, c)),
        BoolExpr::Or(a, c) => format!("({} || {})", rust_bool(src, a), rust_bool(src, c)),
        BoolExpr::Not(a) => format!("(!{})", rust_bool(src, a)),
        BoolExpr::True => "true".into(),
    }
}

/// Emit the body statements (guarded updates) as Rust lines.
fn rust_body(src: &SourceProgram, indent: &str, out: &mut String) {
    for u in &src.body.updates {
        let assign = format!("l{} = {};", u.target.0, rust_scalar(src, &u.value));
        match &u.guard {
            None => {
                let _ = writeln!(out, "{indent}{assign}");
            }
            Some(g) => {
                let _ = writeln!(out, "{indent}if {} {{ {assign} }}", rust_bool(src, g));
            }
        }
    }
}

/// Generate the complete standalone Rust program. `seed` drives the
/// embedded input data (same LCG as [`HostStore::fill_random`]).
pub fn generate_rust(plan: &SystolicProgram, env: &Env, seed: u64) -> String {
    // Input data and expected results.
    let mut store = HostStore::allocate(&plan.source, env);
    for (i, v) in plan.source.variables.iter().enumerate() {
        store.fill_random(&v.name, seed.wrapping_add(i as u64), -9, 9);
    }
    let mut expected = store.clone();
    seq::run(&plan.source, env, &mut expected);

    let ps = plan.ps_box(env);
    let in_ps = |p: &[i64]| p.iter().zip(&ps).all(|(&x, &(lo, hi))| x >= lo && x <= hi);
    let ps_points = plan.ps_points(env);

    let mut next_chan = 0usize;
    let mut alloc = || {
        let c = next_chan;
        next_chan += 1;
        c
    };
    let mut endpoint: HashMap<(usize, Vec<i64>), (usize, usize)> = HashMap::new();
    let mut pipe_n: HashMap<(usize, Vec<i64>), i64> = HashMap::new();

    // Process bodies, emitted after channel count is known.
    let mut bodies: Vec<String> = Vec::new();
    // (output name label, channel, expected values)
    let mut checks: Vec<(String, usize, Vec<i64>)> = Vec::new();

    for sp in &plan.streams {
        let relays = sp.denominator - 1;
        for head in &ps_points {
            if in_ps(&point::sub(head, &sp.unit_flow)) {
                continue;
            }
            let mut chain = Vec::new();
            let mut z = head.clone();
            while in_ps(&z) {
                chain.push(z.clone());
                z = point::add(&z, &sp.unit_flow);
            }
            let first_s = plan.stream_point_at(&sp.first_s, env, head);
            let last_s = plan.stream_point_at(&sp.last_s, env, head);
            let elements: Vec<Vec<i64>> = match (first_s, last_s) {
                (Some(f), Some(l)) => {
                    let k = point::exact_div(&point::sub(&l, &f), &sp.increment_s).unwrap();
                    (0..=k)
                        .map(|t| point::add(&f, &point::scale(t, &sp.increment_s)))
                        .collect()
                }
                _ => Vec::new(),
            };
            let n = elements.len() as i64;
            for z in &chain {
                pipe_n.insert((sp.id.0, z.clone()), n);
            }

            // Input thread.
            let values: Vec<i64> = elements
                .iter()
                .map(|e| store.get(&sp.name).get(e))
                .collect();
            let mut prev = alloc();
            let mut b = String::new();
            let _ = writeln!(b, "    // input {}@{}", sp.name, point::fmt_point(head));
            let _ = writeln!(b, "    {{");
            let _ = writeln!(b, "        let tx = senders[{prev}].take().unwrap();");
            let _ = writeln!(b, "        handles.push(thread::spawn(move || {{");
            let _ = writeln!(
                b,
                "            for v in {values:?} {{ tx.send(v).unwrap(); }}"
            );
            let _ = writeln!(b, "        }}));");
            let _ = writeln!(b, "    }}");
            bodies.push(b);

            for z in &chain {
                for _ in 0..relays {
                    let nxt = alloc();
                    let mut b = String::new();
                    let _ = writeln!(b, "    // relay {}@{}", sp.name, point::fmt_point(z));
                    let _ = writeln!(b, "    {{");
                    let _ = writeln!(b, "        let rx = receivers[{prev}].take().unwrap();");
                    let _ = writeln!(b, "        let tx = senders[{nxt}].take().unwrap();");
                    let _ = writeln!(b, "        handles.push(thread::spawn(move || {{");
                    let _ = writeln!(
                        b,
                        "            for _ in 0..{n} {{ tx.send(rx.recv().unwrap()).unwrap(); }}"
                    );
                    let _ = writeln!(b, "        }}));");
                    let _ = writeln!(b, "    }}");
                    bodies.push(b);
                    prev = nxt;
                }
                let out_c = alloc();
                endpoint.insert((sp.id.0, z.clone()), (prev, out_c));
                prev = out_c;
            }

            // Output thread: collect and check against the expected
            // sequential results.
            let expect: Vec<i64> = elements
                .iter()
                .map(|e| expected.get(&sp.name).get(e))
                .collect();
            checks.push((
                format!("{}@{}", sp.name, point::fmt_point(head)),
                prev,
                expect,
            ));
        }
    }

    // Process-space threads.
    for y in &ps_points {
        if let Some(first) = plan.first_at(env, y) {
            let count = plan.count_at(env, y);
            let mut b = String::new();
            let _ = writeln!(b, "    // computation @{}", point::fmt_point(y));
            let _ = writeln!(b, "    {{");
            // Take the channel handles this process uses.
            for sp in &plan.streams {
                let (ic, oc) = endpoint[&(sp.id.0, y.clone())];
                let _ = writeln!(
                    b,
                    "        let rx{} = receivers[{ic}].take().unwrap();",
                    sp.id.0
                );
                let _ = writeln!(
                    b,
                    "        let tx{} = senders[{oc}].take().unwrap();",
                    sp.id.0
                );
            }
            let _ = writeln!(b, "        handles.push(thread::spawn(move || {{");
            for k in 0..plan.streams.len() {
                let _ = writeln!(b, "            let mut l{k}: i64 = 0;");
            }
            let _ = writeln!(b, "            #[allow(unused_mut, unused_variables)]");
            let _ = writeln!(b, "            let mut x: [i64; {}] = {:?};", plan.r, first);
            // Loads.
            for sp in &plan.streams {
                if matches!(sp.kind, StreamKind::Stationary { .. }) {
                    let k = sp.id.0;
                    let drain = plan.stream_count_at(&sp.drain, env, y);
                    let _ = writeln!(b, "            l{k} = rx{k}.recv().unwrap(); // load");
                    let _ = writeln!(
                        b,
                        "            for _ in 0..{drain} {{ tx{k}.send(rx{k}.recv().unwrap()).unwrap(); }}"
                    );
                }
            }
            // Soaks.
            for sp in &plan.streams {
                if sp.kind == StreamKind::Moving {
                    let k = sp.id.0;
                    let soak = plan.stream_count_at(&sp.soak, env, y);
                    let _ = writeln!(
                        b,
                        "            for _ in 0..{soak} {{ tx{k}.send(rx{k}.recv().unwrap()).unwrap(); }} // soak"
                    );
                }
            }
            // The repeater.
            let _ = writeln!(b, "            for _ in 0..{count} {{");
            for sp in &plan.streams {
                if sp.kind == StreamKind::Moving {
                    let k = sp.id.0;
                    let _ = writeln!(b, "                l{k} = rx{k}.recv().unwrap();");
                }
            }
            rust_body(&plan.source, "                ", &mut b);
            for sp in &plan.streams {
                if sp.kind == StreamKind::Moving {
                    let k = sp.id.0;
                    let _ = writeln!(b, "                tx{k}.send(l{k}).unwrap();");
                }
            }
            let _ = writeln!(
                b,
                "                for d in 0..{} {{ x[d] += {:?}[d]; }}",
                plan.r, plan.increment
            );
            let _ = writeln!(b, "            }}");
            // Drains.
            for sp in &plan.streams {
                if sp.kind == StreamKind::Moving {
                    let k = sp.id.0;
                    let drain = plan.stream_count_at(&sp.drain, env, y);
                    let _ = writeln!(
                        b,
                        "            for _ in 0..{drain} {{ tx{k}.send(rx{k}.recv().unwrap()).unwrap(); }} // drain"
                    );
                }
            }
            // Recoveries.
            for sp in &plan.streams {
                if matches!(sp.kind, StreamKind::Stationary { .. }) {
                    let k = sp.id.0;
                    let soak = plan.stream_count_at(&sp.soak, env, y);
                    let _ = writeln!(
                        b,
                        "            for _ in 0..{soak} {{ tx{k}.send(rx{k}.recv().unwrap()).unwrap(); }}"
                    );
                    let _ = writeln!(b, "            tx{k}.send(l{k}).unwrap(); // recover");
                }
            }
            let _ = writeln!(b, "        }}));");
            let _ = writeln!(b, "    }}");
            bodies.push(b);
        } else {
            // Null process: per-stream relays.
            for sp in &plan.streams {
                let (ic, oc) = endpoint[&(sp.id.0, y.clone())];
                let n = pipe_n[&(sp.id.0, y.clone())];
                let mut b = String::new();
                let _ = writeln!(
                    b,
                    "    // external buffer {}@{}",
                    sp.name,
                    point::fmt_point(y)
                );
                let _ = writeln!(b, "    {{");
                let _ = writeln!(b, "        let rx = receivers[{ic}].take().unwrap();");
                let _ = writeln!(b, "        let tx = senders[{oc}].take().unwrap();");
                let _ = writeln!(b, "        handles.push(thread::spawn(move || {{");
                let _ = writeln!(
                    b,
                    "            for _ in 0..{n} {{ tx.send(rx.recv().unwrap()).unwrap(); }}"
                );
                let _ = writeln!(b, "        }}));");
                let _ = writeln!(b, "    }}");
                bodies.push(b);
            }
        }
    }

    // Assemble the program.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "//! GENERATED by systolizer (rust back end) — do not edit."
    );
    let _ = writeln!(
        out,
        "//! Systolic program for `{}`; self-checking.",
        plan.source.name
    );
    let _ = writeln!(out, "use std::sync::mpsc::sync_channel;");
    let _ = writeln!(out, "use std::thread;");
    let _ = writeln!(out);
    let _ = writeln!(out, "fn main() {{");
    let _ = writeln!(out, "    const NCHAN: usize = {next_chan};");
    let _ = writeln!(
        out,
        "    let mut senders: Vec<Option<std::sync::mpsc::SyncSender<i64>>> = Vec::new();"
    );
    let _ = writeln!(
        out,
        "    let mut receivers: Vec<Option<std::sync::mpsc::Receiver<i64>>> = Vec::new();"
    );
    let _ = writeln!(out, "    for _ in 0..NCHAN {{");
    let _ = writeln!(out, "        let (s, r) = sync_channel::<i64>(1);");
    let _ = writeln!(out, "        senders.push(Some(s));");
    let _ = writeln!(out, "        receivers.push(Some(r));");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    let mut handles = Vec::new();");
    let _ = writeln!(
        out,
        "    let mut outputs: Vec<(&'static str, thread::JoinHandle<Vec<i64>>, Vec<i64>)> = Vec::new();"
    );
    for b in &bodies {
        out.push_str(b);
    }
    for (label, chan, expect) in &checks {
        let _ = writeln!(out, "    // output {label}");
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "        let rx = receivers[{chan}].take().unwrap();");
        let _ = writeln!(out, "        let expect: Vec<i64> = vec!{expect:?};");
        let _ = writeln!(out, "        let count = expect.len();");
        let _ = writeln!(out, "        let h = thread::spawn(move || {{");
        let _ = writeln!(
            out,
            "            (0..count).map(|_| rx.recv().unwrap()).collect::<Vec<i64>>()"
        );
        let _ = writeln!(out, "        }});");
        let _ = writeln!(out, "        outputs.push(({label:?}, h, expect));");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "    for h in handles {{ h.join().unwrap(); }}");
    let _ = writeln!(out, "    for (label, h, expect) in outputs {{");
    let _ = writeln!(out, "        let got = h.join().unwrap();");
    let _ = writeln!(
        out,
        "        assert_eq!(got, expect, \"pipe {{label}} disagrees with the sequential reference\");"
    );
    let _ = writeln!(out, "    }}");
    let _ = writeln!(
        out,
        "    println!(\"systolic == sequential: all pipes verified\");"
    );
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn generated_rust_is_plausible_source() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let src = generate_rust(&plan, &env, 7);
        assert!(src.contains("fn main()"));
        assert!(src.contains("sync_channel"));
        assert!(src.contains("// computation @"));
        assert!(src.contains("l2 = (l2 + (l0 * l1));"));
        // Balanced braces.
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }
}
