//! A *runnable* back end: generate a standalone, self-checking Rust
//! program (std threads + `sync_channel`) from a compiled plan at a
//! concrete problem size.
//!
//! This mechanizes the paper's Sec. 8 experiment — "we have
//! hand-translated our example programs for execution on several
//! parallel computers" — end to end: the translation is generated, the
//! target language is real, and the generated program embeds its own
//! input data and the sequentially-computed expected results, asserting
//! equality at exit. The tests compile the output with `rustc` and run
//! it.
//!
//! Channels use capacity-1 `sync_channel`s: the paper counts the
//! synchronous channel as "a buffer of size 1" (Sec. 7.6), and our
//! buffered-channel property tests show capacity is semantically inert,
//! so the generated program's sequentialized sends (a thread cannot
//! offer a `par` set) stay deadlock-free where the abstract program is.
//!
//! The generator is a [`ProcIrModule`] walker: the plan is elaborated
//! once and each bytecode op renders to the corresponding thread code,
//! so the emitted network is the simulated network *by construction* —
//! there is no second topology derivation to keep in sync.

use crate::elaborate::{elaborate, ElabOptions};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use systolic_core::SystolicProgram;
use systolic_ir::{seq, HostStore, ScalarExpr, SourceProgram};
use systolic_math::Env;
use systolic_runtime::ProcOp;

/// Render the basic statement body as Rust over locals `l0..` and the
/// index point `x`.
#[allow(clippy::only_used_in_recursion)] // src kept for symmetry with rust_bool
fn rust_scalar(src: &SourceProgram, e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Stream(s) => format!("l{}", s.0),
        ScalarExpr::Index(i) => format!("x[{i}]"),
        ScalarExpr::Const(c) => format!("{c}i64"),
        ScalarExpr::Add(a, b) => format!("({} + {})", rust_scalar(src, a), rust_scalar(src, b)),
        ScalarExpr::Sub(a, b) => format!("({} - {})", rust_scalar(src, a), rust_scalar(src, b)),
        ScalarExpr::Mul(a, b) => format!("({} * {})", rust_scalar(src, a), rust_scalar(src, b)),
        ScalarExpr::Min(a, b) => {
            format!("({}).min({})", rust_scalar(src, a), rust_scalar(src, b))
        }
        ScalarExpr::Max(a, b) => {
            format!("({}).max({})", rust_scalar(src, a), rust_scalar(src, b))
        }
        ScalarExpr::Neg(a) => format!("(-{})", rust_scalar(src, a)),
    }
}

fn rust_bool(src: &SourceProgram, b: &systolic_ir::BoolExpr) -> String {
    use systolic_ir::{BoolExpr, CmpOp};
    match b {
        BoolExpr::Cmp(op, a, c) => {
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {} {})", rust_scalar(src, a), sym, rust_scalar(src, c))
        }
        BoolExpr::And(a, c) => format!("({} && {})", rust_bool(src, a), rust_bool(src, c)),
        BoolExpr::Or(a, c) => format!("({} || {})", rust_bool(src, a), rust_bool(src, c)),
        BoolExpr::Not(a) => format!("(!{})", rust_bool(src, a)),
        BoolExpr::True => "true".into(),
    }
}

/// Emit the body statements (guarded updates) as Rust lines.
fn rust_body(src: &SourceProgram, indent: &str, out: &mut String) {
    for u in &src.body.updates {
        let assign = format!("l{} = {};", u.target.0, rust_scalar(src, &u.value));
        match &u.guard {
            None => {
                let _ = writeln!(out, "{indent}{assign}");
            }
            Some(g) => {
                let _ = writeln!(out, "{indent}if {} {{ {assign} }}", rust_bool(src, g));
            }
        }
    }
}

/// Generate the complete standalone Rust program. `seed` drives the
/// embedded input data (same LCG as [`HostStore::fill_random`]).
pub fn generate_rust(plan: &SystolicProgram, env: &Env, seed: u64) -> String {
    let (el, expect_of) = prepared(plan, env, seed);
    emit_program(plan, &el.module, &expect_of, None)
}

/// Generate from the *optimized* module: relay chains become channel
/// capacity instead of threads, so the emitted program has one thread
/// per surviving process and a `sync_channel` sized to each delay ring.
/// The mapping report is validated against the elaboration first
/// ([`crate::runtime_gen::agree_with_opt`]) so codegen never emits a
/// network that silently diverges from what was simulated; the report
/// summary is recorded in the generated header. Falls back to
/// [`generate_rust`] when the optimizer leaves the module untouched.
pub fn generate_rust_opt(plan: &SystolicProgram, env: &Env, seed: u64) -> String {
    let (el, expect_of) = prepared(plan, env, seed);
    let Some(o) = el.optimize(systolic_runtime::OptMode::Auto) else {
        return emit_program(plan, &el.module, &expect_of, None);
    };
    crate::runtime_gen::agree_with_opt(plan, env, &el, &o)
        .expect("optimizer mapping report reconciles with the elaboration");
    let caps: Vec<u64> = (0..o.module.n_chans)
        .map(|c| o.chan_caps.get(c).copied().unwrap_or(0).max(1))
        .collect();
    let mut out = emit_program(plan, &o.module, &expect_of, Some(&caps));
    let note = format!("//! Optimized: {}.\n", o.report.summary());
    let insert = out.find("use std::").expect("generated preamble");
    out.insert_str(insert, &note);
    out
}

/// Elaborate at the generation size and pair each output-buffer index
/// with its sequentially-computed expected values.
fn prepared(
    plan: &SystolicProgram,
    env: &Env,
    seed: u64,
) -> (crate::elaborate::Elaborated, HashMap<u32, Vec<i64>>) {
    let mut store = HostStore::allocate(&plan.source, env);
    for (i, v) in plan.source.variables.iter().enumerate() {
        store.fill_random(&v.name, seed.wrapping_add(i as u64), -9, 9);
    }
    let mut expected = store.clone();
    seq::run(&plan.source, env, &mut expected);

    let el = elaborate(plan, env, &store, &ElabOptions::default())
        .expect("plan elaborates at the generation size");
    let expect_of: HashMap<u32, Vec<i64>> = el
        .outputs
        .iter()
        .map(|spec| {
            let vals = spec
                .elements
                .iter()
                .map(|e| expected.get(&spec.variable).get(e))
                .collect();
            (spec.output, vals)
        })
        .collect();
    (el, expect_of)
}

/// Render one module as the standalone program. `caps` is the
/// per-channel buffer capacity (delay rings from the optimizer); `None`
/// means the paper's uniform "buffer of size 1".
fn emit_program(
    plan: &SystolicProgram,
    module: &systolic_runtime::ProcIrModule,
    expect_of: &HashMap<u32, Vec<i64>>,
    caps: Option<&[u64]>,
) -> String {
    let mut bodies: Vec<String> = Vec::new();
    for pid in 0..module.procs.len() {
        let rec = &module.procs[pid];
        let ops = module.ops_of(pid);
        let data = module.data_of(pid);
        let moving = module.moving_of(pid);

        // The channel handles this thread owns, from the ops themselves.
        let mut rx_chans = BTreeSet::new();
        let mut tx_chans = BTreeSet::new();
        for op in ops {
            match *op {
                ProcOp::Emit { chan } => {
                    tx_chans.insert(chan);
                }
                ProcOp::Collect { chan } | ProcOp::Keep { chan, .. } => {
                    rx_chans.insert(chan);
                }
                ProcOp::Pass { inp, out, .. } => {
                    rx_chans.insert(inp);
                    tx_chans.insert(out);
                }
                ProcOp::Eject { chan, .. } => {
                    tx_chans.insert(chan);
                }
                ProcOp::Compute { .. } => {
                    for l in moving {
                        rx_chans.insert(l.inp);
                        tx_chans.insert(l.out);
                    }
                }
            }
        }

        let is_sink = rec.output.is_some();
        let mut b = String::new();
        let _ = writeln!(b, "    // {}", module.label_of(pid));
        let _ = writeln!(b, "    {{");
        for &c in &rx_chans {
            let _ = writeln!(b, "        let rx{c} = receivers[{c}].take().unwrap();");
        }
        for &c in &tx_chans {
            let _ = writeln!(b, "        let tx{c} = senders[{c}].take().unwrap();");
        }
        if is_sink {
            let _ = writeln!(b, "        let h = thread::spawn(move || {{");
            let _ = writeln!(b, "            let mut out: Vec<i64> = Vec::new();");
        } else {
            let _ = writeln!(b, "        handles.push(thread::spawn(move || {{");
        }
        for k in 0..rec.n_locals {
            let _ = writeln!(b, "            let mut l{k}: i64 = 0;");
        }
        if ops.iter().any(|op| matches!(op, ProcOp::Compute { .. })) {
            let _ = writeln!(b, "            #[allow(unused_mut, unused_variables)]");
            let _ = writeln!(
                b,
                "            let mut x: [i64; {}] = {:?};",
                plan.r,
                module.first_of(pid)
            );
        }

        // Walk the bytecode; runs of `Emit` on one channel compress to a
        // data loop.
        let mut di = 0usize;
        let mut i = 0usize;
        while i < ops.len() {
            match ops[i] {
                ProcOp::Emit { chan } => {
                    let mut vals = vec![data[di]];
                    di += 1;
                    while matches!(ops.get(i + 1), Some(ProcOp::Emit { chan: c }) if *c == chan) {
                        i += 1;
                        vals.push(data[di]);
                        di += 1;
                    }
                    if vals.len() == 1 {
                        let _ = writeln!(b, "            tx{chan}.send({}i64).unwrap();", vals[0]);
                    } else {
                        let _ = writeln!(
                            b,
                            "            for v in {vals:?} {{ tx{chan}.send(v).unwrap(); }}"
                        );
                    }
                }
                ProcOp::Collect { chan } => {
                    let _ = writeln!(b, "            out.push(rx{chan}.recv().unwrap());");
                }
                ProcOp::Keep { chan, slot } => {
                    let _ = writeln!(b, "            l{slot} = rx{chan}.recv().unwrap();");
                }
                ProcOp::Pass { inp, out, n } => {
                    let _ = writeln!(
                        b,
                        "            for _ in 0..{n} {{ tx{out}.send(rx{inp}.recv().unwrap()).unwrap(); }}"
                    );
                }
                ProcOp::Eject { chan, slot } => {
                    let _ = writeln!(b, "            tx{chan}.send(l{slot}).unwrap();");
                }
                ProcOp::Compute { count } => {
                    let _ = writeln!(b, "            for _ in 0..{count} {{");
                    for l in moving {
                        let _ = writeln!(
                            b,
                            "                l{} = rx{}.recv().unwrap();",
                            l.slot, l.inp
                        );
                    }
                    rust_body(&plan.source, "                ", &mut b);
                    for l in moving {
                        let _ =
                            writeln!(b, "                tx{}.send(l{}).unwrap();", l.out, l.slot);
                    }
                    let _ = writeln!(
                        b,
                        "                for d in 0..{} {{ x[d] += {:?}[d]; }}",
                        plan.r,
                        module.increment_of(pid)
                    );
                    let _ = writeln!(b, "            }}");
                }
            }
            i += 1;
        }

        if let Some(oi) = rec.output {
            let expect = &expect_of[&oi];
            let _ = writeln!(b, "            out");
            let _ = writeln!(b, "        }});");
            let _ = writeln!(
                b,
                "        outputs.push(({:?}, h, vec!{expect:?}));",
                module.label_of(pid)
            );
        } else {
            let _ = writeln!(b, "        }}));");
        }
        let _ = writeln!(b, "    }}");
        bodies.push(b);
    }

    // Assemble the program.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "//! GENERATED by systolizer (rust back end) — do not edit."
    );
    let _ = writeln!(
        out,
        "//! Systolic program for `{}`; self-checking.",
        plan.source.name
    );
    let _ = writeln!(out, "use std::sync::mpsc::sync_channel;");
    let _ = writeln!(out, "use std::thread;");
    let _ = writeln!(out);
    let _ = writeln!(out, "fn main() {{");
    let _ = writeln!(out, "    const NCHAN: usize = {};", module.n_chans);
    let _ = writeln!(
        out,
        "    let mut senders: Vec<Option<std::sync::mpsc::SyncSender<i64>>> = Vec::new();"
    );
    let _ = writeln!(
        out,
        "    let mut receivers: Vec<Option<std::sync::mpsc::Receiver<i64>>> = Vec::new();"
    );
    match caps {
        None => {
            let _ = writeln!(out, "    for _ in 0..NCHAN {{");
            let _ = writeln!(out, "        let (s, r) = sync_channel::<i64>(1);");
            let _ = writeln!(out, "        senders.push(Some(s));");
            let _ = writeln!(out, "        receivers.push(Some(r));");
            let _ = writeln!(out, "    }}");
        }
        Some(caps) => {
            let caps: Vec<usize> = caps.iter().map(|&c| c as usize).collect();
            let _ = writeln!(out, "    // Delay-ring capacities from the optimizer.");
            let _ = writeln!(out, "    const CAPS: [usize; NCHAN] = {caps:?};");
            let _ = writeln!(out, "    for c in 0..NCHAN {{");
            let _ = writeln!(out, "        let (s, r) = sync_channel::<i64>(CAPS[c]);");
            let _ = writeln!(out, "        senders.push(Some(s));");
            let _ = writeln!(out, "        receivers.push(Some(r));");
            let _ = writeln!(out, "    }}");
        }
    }
    let _ = writeln!(out, "    let mut handles = Vec::new();");
    let _ = writeln!(
        out,
        "    let mut outputs: Vec<(&'static str, thread::JoinHandle<Vec<i64>>, Vec<i64>)> = Vec::new();"
    );
    for b in &bodies {
        out.push_str(b);
    }
    let _ = writeln!(out, "    for h in handles {{ h.join().unwrap(); }}");
    let _ = writeln!(out, "    for (label, h, expect) in outputs {{");
    let _ = writeln!(out, "        let got = h.join().unwrap();");
    let _ = writeln!(
        out,
        "        assert_eq!(got, expect, \"pipe {{label}} disagrees with the sequential reference\");"
    );
    let _ = writeln!(out, "    }}");
    let _ = writeln!(
        out,
        "    println!(\"systolic == sequential: all pipes verified\");"
    );
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn generated_rust_is_plausible_source() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let src = generate_rust(&plan, &env, 7);
        assert!(src.contains("fn main()"));
        assert!(src.contains("sync_channel"));
        assert!(src.contains("// comp@"));
        assert!(src.contains("l2 = (l2 + (l0 * l1));"));
        // Balanced braces.
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }

    #[test]
    fn optimized_generation_drops_relay_threads_and_sizes_the_rings() {
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 4);
        let store = HostStore::allocate(&p, &env);
        let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        let o = el
            .optimize(systolic_runtime::OptMode::Auto)
            .expect("E.2 has relay chains to fuse");
        let src = generate_rust_opt(&plan, &env, 7);
        assert!(src.contains("//! Optimized:"));
        assert!(src.contains("const CAPS: [usize; NCHAN]"));
        assert!(src.contains(&format!("const NCHAN: usize = {};", o.module.n_chans)));
        // One `thread::spawn` per surviving process — the fused relays
        // are gone from the generated program too.
        assert_eq!(src.matches("thread::spawn").count(), o.module.procs.len());
        assert!(o.module.procs.len() < el.module.procs.len());
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }

    #[test]
    fn untouched_modules_fall_back_to_plain_generation() {
        // A design the optimizer leaves alone generates the same program
        // through both entry points.
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let mut env = Env::new();
            env.bind(p.sizes[0], 2);
            let store = HostStore::allocate(&p, &env);
            let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
            if el.optimize(systolic_runtime::OptMode::Auto).is_some() {
                continue;
            }
            assert_eq!(
                generate_rust(&plan, &env, 7),
                generate_rust_opt(&plan, &env, 7),
                "{label}"
            );
        }
    }

    #[test]
    fn generated_channel_count_is_the_module_channel_count() {
        let (p, a) = paper::matmul_e1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 2);
        let store = HostStore::allocate(&p, &env);
        let el = elaborate(&plan, &env, &store, &ElabOptions::default()).unwrap();
        let src = generate_rust(&plan, &env, 7);
        assert!(src.contains(&format!("const NCHAN: usize = {};", el.module.n_chans)));
    }
}
