//! Space–time tracing: the classic systolic-array diagram.
//!
//! The hardware literature depicts systolic designs as space–time plots:
//! which cell touches which stream at which clock tick. The simulated
//! machine records every channel transfer with its rendezvous round;
//! this module maps transfers back to process coordinates and renders an
//! ASCII space–time diagram for 1-dimensional arrays (Appendix D's
//! designs) and per-round activity summaries for higher dimensions.

use crate::cache::ModuleStore;
use crate::elaborate::{ElabOptions, Elaborated};
use crate::exec::ExecError;
use std::collections::HashMap;
use systolic_core::SystolicProgram;
use systolic_ir::HostStore;
use systolic_math::Env;
use systolic_runtime::{shared, ChannelPolicy, EventLogRecorder, Network};

/// One located transfer: stream, receiving process coordinates, round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocatedEvent {
    pub round: u64,
    pub stream: String,
    /// Coordinates of the process the value arrived at.
    pub at: Vec<i64>,
    pub value: i64,
}

/// Run the plan with tracing; returns the located arrival events at
/// computation/buffer processes (i/o fringe and relay hops are omitted:
/// the diagram shows cell activity, as the hardware figures do).
///
/// The events are sourced from the runtime's recorder stream (an
/// [`EventLogRecorder`] attached to the network) — the same stream the
/// metrics and Perfetto exporters consume.
pub fn run_traced(
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
) -> Result<(Vec<LocatedEvent>, u64), ExecError> {
    let cm = ModuleStore::global().module(plan, env, store, &ElabOptions::default())?;
    let Elaborated {
        module, endpoints, ..
    } = &cm.elab;
    let (log, erased) = shared(EventLogRecorder::new());
    let recorders = [erased];
    let inst = module.instantiate_recorded(&recorders);
    let mut net = Network::new(ChannelPolicy::Rendezvous);
    net.add_recorder(recorders[0].clone());
    for p in inst.procs {
        net.add(p);
    }
    let stats = net.run().map_err(ExecError::Run)?;
    // chan -> (stream name, coords) for the *incoming* channel of each
    // process.
    let mut incoming: HashMap<usize, (String, Vec<i64>)> = HashMap::new();
    for (sid, y, ic, _oc) in endpoints {
        incoming.insert(*ic, (plan.streams[*sid].name.clone(), y.clone()));
    }
    let located = log
        .lock()
        .transfers()
        .iter()
        .filter_map(|t| {
            incoming.get(&t.chan).map(|(stream, at)| LocatedEvent {
                round: t.time,
                stream: stream.clone(),
                at: at.clone(),
                value: t.value,
            })
        })
        .collect();
    Ok((located, stats.rounds))
}

/// Render an ASCII space–time diagram for a 1-D process space: one row
/// per round, one column per process, cells showing the initials of the
/// streams arriving there in that round.
pub fn render_1d(plan: &SystolicProgram, events: &[LocatedEvent], env: &Env) -> String {
    assert_eq!(plan.coords.len(), 1, "render_1d needs a 1-D process space");
    let (lo, hi) = plan.ps_box(env)[0];
    let width = plan.streams.len() + 1;
    let max_round = events.iter().map(|e| e.round).max().unwrap_or(0);
    let mut grid: HashMap<(u64, i64), String> = HashMap::new();
    for e in events {
        grid.entry((e.round, e.at[0]))
            .or_default()
            .push_str(&e.stream[0..1]);
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = write!(out, "{:>6} |", "round");
    for col in lo..=hi {
        let _ = write!(out, "{col:^width$}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}+{}",
        "-".repeat(7),
        "-".repeat(((hi - lo + 1) as usize) * width)
    );
    for round in 0..=max_round {
        // Skip silent rounds for compactness.
        if (lo..=hi).all(|c| !grid.contains_key(&(round, c))) {
            continue;
        }
        let _ = write!(out, "{round:>6} |");
        for col in lo..=hi {
            let cell = grid.get(&(round, col)).cloned().unwrap_or_default();
            let _ = write!(out, "{cell:^width$}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Per-round activity counts for any dimensionality: (round, transfers).
pub fn activity_profile(events: &[LocatedEvent]) -> Vec<(u64, usize)> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for e in events {
        *counts.entry(e.round).or_default() += 1;
    }
    let mut out: Vec<(u64, usize)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn d1_trace_produces_a_diagram() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let n = 3i64;
        let mut env = Env::new();
        env.bind(p.sizes[0], n);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 1, -5, 5);
        store.fill_random("b", 2, -5, 5);
        let (events, rounds) = run_traced(&plan, &env, &store).unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.round < rounds));
        let diagram = render_1d(&plan, &events, &env);
        assert!(diagram.contains("round"));
        // Every stream appears somewhere in the diagram body.
        for s in ["a", "b", "c"] {
            assert!(diagram.contains(s), "{s} missing:\n{diagram}");
        }
    }

    #[test]
    fn activity_rises_and_falls() {
        // Systolic wavefront: activity ramps up, plateaus, drains.
        let (p, a) = paper::matmul_e2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 3);
        let mut store = HostStore::allocate(&p, &env);
        store.fill_random("a", 1, -5, 5);
        store.fill_random("b", 2, -5, 5);
        let (events, _) = run_traced(&plan, &env, &store).unwrap();
        let profile = activity_profile(&events);
        assert!(profile.len() > 3);
        let peak = profile.iter().map(|&(_, c)| c).max().unwrap();
        assert!(peak > profile[0].1, "activity grows from the first round");
        assert!(peak > profile.last().unwrap().1, "and drains at the end");
    }

    #[test]
    fn event_counts_match_message_flow_through_cells() {
        let (p, a) = paper::polyprod_d2();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(p.sizes[0], 2);
        let store = HostStore::allocate(&p, &env);
        let (events, _) = run_traced(&plan, &env, &store).unwrap();
        // Each PS process receives pipe-N values per stream; total events
        // = sum over (stream, process) of N.
        let mut expect = 0i64;
        for y in plan.ps_points(&env) {
            for sp in &plan.streams {
                // Walk to head for N.
                let ps = plan.ps_box(&env);
                let inside =
                    |pt: &Vec<i64>| pt.iter().zip(&ps).all(|(&x, &(lo, hi))| x >= lo && x <= hi);
                let mut head = y.clone();
                loop {
                    let prev = systolic_math::point::sub(&head, &sp.unit_flow);
                    if !inside(&prev) {
                        break;
                    }
                    head = prev;
                }
                let f = plan.stream_point_at(&sp.first_s, &env, &head);
                let l = plan.stream_point_at(&sp.last_s, &env, &head);
                if let (Some(f), Some(l)) = (f, l) {
                    expect += systolic_math::point::exact_div(
                        &systolic_math::point::sub(&l, &f),
                        &sp.increment_s,
                    )
                    .unwrap()
                        + 1;
                }
            }
        }
        assert_eq!(events.len() as i64, expect);
    }
}
