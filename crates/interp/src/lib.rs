//! # systolic-interp
//!
//! Elaboration and execution of compiled systolic programs: the bridge
//! between the symbolic plan (`systolic-core`) and the simulated
//! distributed-memory machine (`systolic-runtime`).
//!
//! - [`comp`] — the computation-process virtual machine (the canonical
//!   load / soak / repeater / drain / recover program shape);
//! - [`elaborate`] — pipe construction, channel allocation, buffer
//!   insertion at a concrete problem size;
//! - [`exec`] — running plans on either executor and verifying
//!   observational equivalence with the sequential reference.

pub mod comp;
pub mod describe;
pub mod elaborate;
pub mod exec;
pub mod runtime_gen;
pub mod rustgen;
pub mod trace;

pub use describe::describe;
pub use elaborate::{elaborate, Census, ElabOptions, Elaborated, OutputBinding};
pub use exec::{
    run_plan, run_plan_partitioned, run_plan_threaded, verify_equivalence, verify_equivalence_with,
    ExecError, SystolicRun,
};
