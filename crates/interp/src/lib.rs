//! # systolic-interp
//!
//! Elaboration and execution of compiled systolic programs: the bridge
//! between the symbolic plan (`systolic-core`) and the simulated
//! distributed-memory machine (`systolic-runtime`).
//!
//! - [`elaborate`] — pipe construction, channel allocation, buffer
//!   insertion at a concrete problem size, lowering every process to the
//!   flat `ProcIR` bytecode (`systolic_runtime::ProcIrModule`);
//! - [`skeleton`] — the same lowering split in two: a size-parametric
//!   skeleton compiled once per plan, instantiated per concrete size;
//! - [`cache`] — the `Arc`-shared module store in front of both phases,
//!   which every executor entry point goes through;
//! - [`kernelize`] — the basic-statement → straight-line kernel compiler
//!   behind the wavefront executor's vectorized wave path;
//! - [`exec`] — running plans on any executor and verifying
//!   observational equivalence with the sequential reference;
//! - [`metrics`] — observed runs: metrics reports and Perfetto traces
//!   with channels named by stream and process-space point.

pub mod cache;
pub mod describe;
pub mod elaborate;
pub mod exec;
pub mod facade;
pub mod kernelize;
pub mod metrics;
pub mod runtime_gen;
pub mod rustgen;
pub mod skeleton;
pub mod trace;

pub use cache::{CacheStats, CachedModule, ModuleStore};
pub use describe::describe;
pub use elaborate::{elaborate, Census, ElabError, ElabOptions, Elaborated, OutputSpec};
pub use exec::{
    run_plan, run_plan_batch, run_plan_batch_in, run_plan_batch_kernel, run_plan_batch_kernel_in,
    run_plan_partitioned, run_plan_partitioned_batch, run_plan_partitioned_batch_in,
    run_plan_partitioned_recorded, run_plan_recorded, run_plan_scheduled, run_plan_scheduled_in,
    run_plan_threaded, run_plan_threaded_batch, run_plan_threaded_batch_in,
    run_plan_threaded_recorded, verify_equivalence, verify_equivalence_all,
    verify_equivalence_batch, verify_equivalence_batch_kernel, verify_equivalence_with, ExecError,
    SystolicRun, VerifyError,
};
pub use facade::{simulate, simulate_verified, ExecutorChoice, SimSpec};
pub use kernelize::{kernelize, KERNEL_MAX_OPS};
pub use metrics::{channel_names, observe_plan, observe_plan_in, Observed};
pub use skeleton::{elaborate_skeleton, instantiate, SkeletonModule};
pub use systolic_runtime::{
    analyze_kernels, channel_diagnostics, BatchMode, KernelMode, KernelPlan, KernelReport,
    OptMode, OptReport, WavefrontMode,
};
