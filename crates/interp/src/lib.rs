//! # systolic-interp
//!
//! Elaboration and execution of compiled systolic programs: the bridge
//! between the symbolic plan (`systolic-core`) and the simulated
//! distributed-memory machine (`systolic-runtime`).
//!
//! - [`elaborate`] — pipe construction, channel allocation, buffer
//!   insertion at a concrete problem size, lowering every process to the
//!   flat `ProcIR` bytecode (`systolic_runtime::ProcIrModule`);
//! - [`exec`] — running plans on any executor and verifying
//!   observational equivalence with the sequential reference.

pub mod describe;
pub mod elaborate;
pub mod exec;
pub mod runtime_gen;
pub mod rustgen;
pub mod trace;

pub use describe::describe;
pub use elaborate::{elaborate, Census, ElabError, ElabOptions, Elaborated, OutputSpec};
pub use exec::{
    run_plan, run_plan_partitioned, run_plan_threaded, verify_equivalence, verify_equivalence_with,
    ExecError, SystolicRun,
};
