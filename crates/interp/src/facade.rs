//! The library facade the multi-tenant service front end sits on
//! (`crates/service`, `docs/service.md`): one request-shaped entry
//! point over the executor zoo of [`crate::exec`], always routed
//! through an explicit [`ModuleStore`] so concurrent requests share
//! elaborated modules and the cache counters describe one tenant
//! population rather than the whole process.
//!
//! The facade deliberately stays below HTTP: it knows nothing about
//! sockets, worker pools, or JSON. It maps a [`SimSpec`] — executor
//! choice, engine modes, deadline, optional adversarial schedule — onto
//! the right `run_plan_*_in` entry point, and offers a differential
//! variant ([`simulate_verified`]) whose failure names the engine that
//! diverged (see [`VerifyError`]).

use crate::cache::ModuleStore;
use crate::elaborate::ElabOptions;
use crate::exec::{
    run_plan_batch_kernel_in, run_plan_partitioned_batch_in, run_plan_threaded_batch_in,
    ExecError, SystolicRun, VerifyError,
};
use std::time::Duration;
use systolic_core::SystolicProgram;
use systolic_ir::{seq, HostStore};
use systolic_math::Env;
use systolic_runtime::{
    BatchMode, ChannelPolicy, KernelMode, OptMode, SchedulePolicy, WavefrontMode,
};

/// Which executor family a request runs on. The cooperative scheduler
/// is the deterministic default (and the only one that honors a
/// non-FIFO [`SchedulePolicy`]); the threaded and partitioned engines
/// trade determinism of *timing* (never of stores) for OS-thread
/// parallelism and bound their rendezvous waits by the spec deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorChoice {
    Coop,
    Threaded,
    Partitioned { workers: usize },
}

impl ExecutorChoice {
    /// The stable label used in responses, stats, and
    /// [`VerifyError::engine`].
    pub fn label(&self) -> &'static str {
        match self {
            ExecutorChoice::Coop => "coop",
            ExecutorChoice::Threaded => "threaded",
            ExecutorChoice::Partitioned { .. } => "partitioned",
        }
    }

    /// Parse a request-level executor name. `workers` only matters for
    /// `"partitioned"`.
    pub fn parse(name: &str, workers: usize) -> Option<ExecutorChoice> {
        match name {
            "coop" => Some(ExecutorChoice::Coop),
            "threaded" => Some(ExecutorChoice::Threaded),
            "partitioned" => Some(ExecutorChoice::Partitioned {
                workers: workers.max(1),
            }),
            _ => None,
        }
    }
}

/// Everything about a simulation request except the program itself:
/// engine modes, executor, deadline, and an optional scheduling
/// adversary (DST replays route through here).
pub struct SimSpec {
    pub batch: BatchMode,
    pub opt: OptMode,
    pub wavefront: WavefrontMode,
    /// Compiled-kernel gate for wavefront runs (`--kernel auto|off`);
    /// inert on every other path.
    pub kernel: KernelMode,
    pub executor: ExecutorChoice,
    /// Rendezvous-wait budget for the threaded/partitioned engines. The
    /// cooperative engine has no internal clock; its deadline is
    /// enforced by the worker pool above the facade.
    pub deadline: Duration,
    /// Non-FIFO policies force the cooperative engine (the threaded
    /// engines have no worklist to permute), exactly like the DST
    /// harness in `systolic-sim`.
    pub sched: Option<Box<dyn SchedulePolicy>>,
}

impl Default for SimSpec {
    fn default() -> SimSpec {
        SimSpec {
            batch: BatchMode::Auto,
            opt: OptMode::Auto,
            wavefront: WavefrontMode::Auto,
            kernel: KernelMode::Auto,
            executor: ExecutorChoice::Coop,
            deadline: Duration::from_secs(30),
            sched: None,
        }
    }
}

/// Run one simulation through the shared module store. Stores are
/// bit-identical across every executor/mode combination — that is the
/// repo-wide oracle contract; the spec only chooses *how* the identical
/// result is produced and how long the engines may wait.
pub fn simulate(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    spec: SimSpec,
) -> Result<SystolicRun, ExecError> {
    let SimSpec {
        batch,
        opt,
        wavefront,
        kernel,
        executor,
        deadline,
        sched,
    } = spec;
    let adversarial = sched.as_ref().is_some_and(|s| !s.is_fifo());
    match executor {
        // Non-FIFO schedules only exist on the cooperative worklist.
        _ if adversarial => run_plan_batch_kernel_in(
            ms,
            plan,
            env,
            store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
            batch,
            opt,
            wavefront,
            kernel,
            sched,
            &[],
        ),
        ExecutorChoice::Coop => run_plan_batch_kernel_in(
            ms,
            plan,
            env,
            store,
            ChannelPolicy::Rendezvous,
            &ElabOptions::default(),
            batch,
            opt,
            wavefront,
            kernel,
            sched,
            &[],
        ),
        ExecutorChoice::Threaded => {
            run_plan_threaded_batch_in(ms, plan, env, store, deadline, batch, opt)
        }
        ExecutorChoice::Partitioned { workers } => {
            run_plan_partitioned_batch_in(ms, plan, env, store, workers, deadline, batch, opt)
        }
    }
}

/// [`simulate`], then compare every variable of the resulting store
/// against the sequential reference (`systolic_ir::seq`). A mismatch
/// comes back as [`VerifyError::Divergence`] carrying the executor
/// label the spec selected — the service's differential mode surfaces
/// this verbatim so a misbehaving engine is named, not guessed.
pub fn simulate_verified(
    ms: &ModuleStore,
    plan: &SystolicProgram,
    env: &Env,
    store: &HostStore,
    spec: SimSpec,
) -> Result<SystolicRun, VerifyError> {
    let engine = spec.executor.label();
    let run = simulate(ms, plan, env, store, spec).map_err(|e| match e {
        ExecError::Run(error) => VerifyError::Engine { engine, error },
        other => VerifyError::Setup {
            message: format!("{engine}: {other}"),
        },
    })?;
    let mut expected = store.clone();
    seq::run(&plan.source, env, &mut expected);
    for name in expected.names() {
        if run.store.get(name) != expected.get(name) {
            return Err(VerifyError::Divergence {
                engine,
                variable: name.to_string(),
            });
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    fn setup(n: i64) -> (SystolicProgram, Env, HostStore) {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], n);
        let mut store = HostStore::allocate(&plan.source, &env);
        store.fill_random("a", 7, -9, 9);
        store.fill_random("b", 8, -9, 9);
        (plan, env, store)
    }

    #[test]
    fn every_executor_choice_matches_the_oracle_off_one_store() {
        let (plan, env, store) = setup(5);
        let ms = ModuleStore::new();
        let mut expected = store.clone();
        seq::run(&plan.source, &env, &mut expected);
        for executor in [
            ExecutorChoice::Coop,
            ExecutorChoice::Threaded,
            ExecutorChoice::Partitioned { workers: 2 },
        ] {
            let run = simulate(
                &ms,
                &plan,
                &env,
                &store,
                SimSpec {
                    executor,
                    ..SimSpec::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", executor.label()));
            assert_eq!(
                run.store.get("c"),
                expected.get("c"),
                "{}",
                executor.label()
            );
        }
        let s = ms.stats();
        // Three executor runs over identical (plan, sizes, data): one
        // miss, then hits — the whole point of sharing the store.
        assert_eq!(s.module_misses, 1);
        assert_eq!(s.module_hits, 2);
    }

    #[test]
    fn verified_simulation_reports_the_engine_label() {
        let (plan, env, store) = setup(4);
        let ms = ModuleStore::new();
        let run = simulate_verified(&ms, &plan, &env, &store, SimSpec::default()).unwrap();
        assert!(!run.store.get("c").is_empty());
        // Engine errors carry the label: a 1ns deadline on the threaded
        // engine must time out and be attributed to it.
        let err = match simulate_verified(
            &ms,
            &plan,
            &env,
            &store,
            SimSpec {
                executor: ExecutorChoice::Threaded,
                batch: BatchMode::Off,
                deadline: Duration::from_nanos(1),
                ..SimSpec::default()
            },
        ) {
            Ok(_) => panic!("a 1ns threaded deadline must time out"),
            Err(e) => e,
        };
        assert_eq!(err.engine(), Some("threaded"), "{err}");
    }
}
