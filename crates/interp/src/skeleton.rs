//! Two-phase elaboration: a size-parametric ProcIR skeleton compiled
//! once per (plan, options), instantiated at any concrete problem size
//! in near-linear time.
//!
//! [`crate::elaborate::elaborate`] re-derives everything — the pipe
//! topology, the schedule clauses, the per-point counts — from the
//! symbolic plan at every concrete size. But the paper's derivation is
//! symbolic in the size already, and the only per-size facts are
//! integers: the PS box corners, the pipe contents, and the
//! soak/count/drain values at each point. Phase 1
//! ([`elaborate_skeleton`]) runs everything that does *not* depend on
//! the size bound: it partially evaluates every schedule quantity over
//! the **extended** dimension vector `coordinates ++ sizes`
//! (`systolic_math::speceval` keeps the listed variables symbolic as
//! integer coefficients), captures each stream's unit flow, relay
//! count, and element increment, and wraps the shared [`ComputeBody`].
//! Phase 2 ([`instantiate`]) binds the size values into the tail of one
//! evaluation vector and sweeps the now-concrete PS box with pure
//! integer arithmetic — no parsing, no rational solving, no symbolic
//! clause selection.
//!
//! The construction mirrors [`crate::elaborate::elaborate`] operation
//! for operation — same channel allocation order, same relay labels,
//! same census — and the specialized forms answer exactly as their
//! symbolic originals (clause order preserved, exact integer
//! arithmetic), so the instantiated module is **bit-identical** to a
//! direct elaboration: `tests/elaboration.rs` pins module structure,
//! output maps, endpoints, and run results differentially. The direct
//! elaborator stays untouched as the oracle implementation.
//!
//! Skeletons are immutable and `Arc`-shared; the module cache
//! (`crate::cache`) sits in front of both phases.

use crate::elaborate::{
    BodyAdapter, Census, ChanAlloc, ElabError, ElabOptions, Elaborated, OutputSpec, PsIndex,
};
use std::sync::Arc;
use systolic_core::{StreamKind, SystolicProgram};
use systolic_ir::HostStore;
use systolic_math::speceval::{SpecCount, SpecPoint};
use systolic_math::{point, Env, Var};
use systolic_runtime::{ChanId, ComputeBody, MovingLink, ProcIrBuilder, ProcOp};

/// Everything phase 2 needs about one stream, with every schedule
/// quantity specialized over the extended dimension vector.
struct StreamSkeleton {
    /// `StreamId` index — the row of the endpoint tables.
    id: usize,
    name: String,
    kind: StreamKind,
    unit_flow: Vec<i64>,
    increment_s: Vec<i64>,
    /// Internal relay buffers per chain element (`denominator - 1`,
    /// already gated by [`ElabOptions::internal_buffers`]).
    relays: i64,
    first_s: SpecPoint,
    last_s: SpecPoint,
    soak: SpecCount,
    drain: SpecCount,
}

/// A size-parametric ProcIR skeleton: phase 1's output, consumed by
/// [`instantiate`] at each concrete size.
pub struct SkeletonModule {
    opts: ElabOptions,
    /// Process-space dimensionality (`r - 1`): the evaluation vector is
    /// `[y_0 .. y_{n_coords-1}, size_0 .. size_{k-1}]`.
    n_coords: usize,
    /// The size symbols, in `SourceProgram::sizes` order — the tail of
    /// the evaluation vector.
    size_vars: Vec<Var>,
    ps_min: Vec<systolic_math::speceval::SpecAffine>,
    ps_max: Vec<systolic_math::speceval::SpecAffine>,
    first: SpecPoint,
    count: SpecCount,
    increment: Vec<i64>,
    /// `plan.streams.len()`, the computation processes' local-slot count.
    n_slots: u32,
    /// `max(StreamId) + 1`, the endpoint-table row count.
    n_streams: usize,
    streams: Vec<StreamSkeleton>,
    body: Arc<dyn ComputeBody>,
    /// Straight-line kernel compiled once per plan (size-independent,
    /// like the body), carried into every instantiated module.
    kernel: Option<Arc<systolic_runtime::Kernel>>,
    kernel_reject: Option<String>,
}

impl SkeletonModule {
    /// The size symbols this skeleton expects bound at instantiation,
    /// in evaluation-vector order.
    pub fn size_vars(&self) -> &[Var] {
        &self.size_vars
    }

    pub fn options(&self) -> &ElabOptions {
        &self.opts
    }
}

/// Phase 1: compile `plan` into a size-parametric skeleton. Everything
/// symbolic is partially evaluated here — over the extended dimension
/// vector `plan.coords ++ plan.source.sizes`, with an empty environment,
/// so a variable outside that vector panics now (at compile) rather than
/// at some instantiation later.
pub fn elaborate_skeleton(plan: &SystolicProgram, opts: &ElabOptions) -> Arc<SkeletonModule> {
    use systolic_math::speceval::SpecAffine;
    let mut dims: Vec<Var> = plan.coords.clone();
    dims.extend(plan.source.sizes.iter().copied());
    let env = Env::new();
    let streams = plan
        .streams
        .iter()
        .map(|sp| StreamSkeleton {
            id: sp.id.0,
            name: sp.name.clone(),
            kind: sp.kind.clone(),
            unit_flow: sp.unit_flow.clone(),
            increment_s: sp.increment_s.clone(),
            relays: if opts.internal_buffers {
                sp.denominator - 1
            } else {
                0
            },
            first_s: SpecPoint::of_points(&sp.first_s, &dims, &env),
            last_s: SpecPoint::of_points(&sp.last_s, &dims, &env),
            soak: SpecCount::of(&sp.soak, &dims, &env),
            drain: SpecCount::of(&sp.drain, &dims, &env),
        })
        .collect();
    let (kernel, kernel_reject) = match crate::kernelize::kernelize(&plan.source.body) {
        Ok(k) => (Some(Arc::new(k)), None),
        Err(why) => (None, Some(why)),
    };
    Arc::new(SkeletonModule {
        opts: opts.clone(),
        n_coords: plan.coords.len(),
        size_vars: plan.source.sizes.clone(),
        ps_min: plan
            .ps_min
            .iter()
            .map(|a| SpecAffine::compile(a, &dims, &env))
            .collect(),
        ps_max: plan
            .ps_max
            .iter()
            .map(|a| SpecAffine::compile(a, &dims, &env))
            .collect(),
        first: SpecPoint::of_points(&plan.first, &dims, &env),
        count: SpecCount::of(&plan.count, &dims, &env),
        increment: plan.increment.clone(),
        n_slots: plan.streams.len() as u32,
        n_streams: plan.streams.iter().map(|s| s.id.0 + 1).max().unwrap_or(0),
        streams,
        body: Arc::new(BodyAdapter(Arc::new(plan.source.body.clone()))),
        kernel,
        kernel_reject,
    })
}

/// Phase 2: materialize channels, processes, and endpoint tables for the
/// concrete size bound in `env`, reading initial stream data from
/// `store`. Mirrors [`crate::elaborate::elaborate`]'s construction order
/// exactly; every symbolic query is a prebaked integer form evaluated at
/// `[y ++ sizes]`.
pub fn instantiate(
    skel: &SkeletonModule,
    env: &Env,
    store: &HostStore,
) -> Result<Elaborated, ElabError> {
    let nc = skel.n_coords;
    // One evaluation vector for every query below: the size tail is
    // fixed for the whole sweep, the coordinate head is overwritten per
    // point (the two-phase analogue of elaborate's scratch environment).
    let mut yx = vec![0i64; nc + skel.size_vars.len()];
    for (slot, &v) in yx[nc..].iter_mut().zip(&skel.size_vars) {
        *slot = env.expect(v);
    }
    let ps: Vec<(i64, i64)> = skel
        .ps_min
        .iter()
        .zip(&skel.ps_max)
        .map(|(lo, hi)| (lo.eval_int(&yx), hi.eval_int(&yx)))
        .collect();
    let in_ps = |p: &[i64]| p.iter().zip(&ps).all(|(&x, &(lo, hi))| x >= lo && x <= hi);
    let ps_points = enumerate_box(&ps);
    let psidx = PsIndex::new(&ps);
    let opts = &skel.opts;

    let mut chans = ChanAlloc(0);
    let mut b = ProcIrBuilder::new();
    let mut outputs = Vec::new();
    let mut census = Census::default();
    let mut endpoint: Vec<Vec<(ChanId, ChanId)>> =
        vec![vec![(ChanId::MAX, ChanId::MAX); psidx.len()]; skel.n_streams];
    let mut pipe_n: Vec<Vec<i64>> = vec![vec![0; psidx.len()]; skel.n_streams];

    struct PipeIo {
        entry: ChanId,
        exit: ChanId,
        head: Vec<i64>,
        tail: Vec<i64>,
        values: Vec<i64>,
        elements: Vec<Vec<i64>>,
    }

    for sp in &skel.streams {
        let u = &sp.unit_flow;
        let var = store
            .try_get(&sp.name)
            .ok_or_else(|| ElabError::MissingVariable {
                variable: sp.name.clone(),
            })?;
        let mut pipe_ios: Vec<PipeIo> = Vec::new();
        for head in &ps_points {
            if in_ps(&point::sub(head, u)) {
                continue; // not the upstream end of a pipe
            }
            let mut chain = Vec::new();
            let mut z = head.clone();
            while in_ps(&z) {
                chain.push(z.clone());
                z = point::add(&z, u);
            }
            yx[..nc].copy_from_slice(head);
            let first_s = sp.first_s.point_at(&yx);
            let last_s = sp.last_s.point_at(&yx);
            let (elements, n) = match (first_s, last_s) {
                (Some(f), Some(l)) => {
                    let k = point::exact_div(&point::sub(&l, &f), &sp.increment_s).ok_or_else(
                        || ElabError::MisalignedPipe {
                            stream: sp.name.clone(),
                            head: head.clone(),
                        },
                    )?;
                    if k < 0 {
                        return Err(ElabError::ReversedPipe {
                            stream: sp.name.clone(),
                            head: head.clone(),
                        });
                    }
                    let elems: Vec<Vec<i64>> = (0..=k)
                        .map(|t| point::add(&f, &point::scale(t, &sp.increment_s)))
                        .collect();
                    let n = elems.len() as i64;
                    (elems, n)
                }
                _ => (Vec::new(), 0),
            };
            for z in &chain {
                pipe_n[sp.id][psidx.at(z)] = n;
            }

            let entry = chans.next();
            let mut prev = entry;
            for z in &chain {
                for r in 0..sp.relays {
                    let nxt = chans.next();
                    b.relay(
                        prev,
                        nxt,
                        n.max(0) as usize,
                        format!("buf{r}:{}@{}", sp.name, point::fmt_point(z)),
                    );
                    census.internal_buffers += 1;
                    prev = nxt;
                }
                let out = chans.next();
                endpoint[sp.id][psidx.at(z)] = (prev, out);
                prev = out;
            }
            let values = elements
                .iter()
                .map(|e| {
                    var.checked_get(e)
                        .ok_or_else(|| ElabError::ElementOutOfBounds {
                            variable: sp.name.clone(),
                            element: e.clone(),
                        })
                })
                .collect::<Result<Vec<i64>, ElabError>>()?;
            pipe_ios.push(PipeIo {
                entry,
                exit: prev,
                head: head.clone(),
                tail: chain.last().unwrap().clone(),
                values,
                elements,
            });
        }

        if opts.merge_io {
            let max_len = pipe_ios.iter().map(|p| p.values.len()).max().unwrap_or(0);
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            let mut merged_elems = Vec::new();
            for t in 0..max_len {
                for p in &pipe_ios {
                    if t < p.values.len() {
                        sends.push((p.entry, p.values[t]));
                        recvs.push(p.exit);
                        merged_elems.push(p.elements[t].clone());
                    }
                }
            }
            b.scripted_source(&sends, format!("in:{}", sp.name));
            let (_, out) = b.scripted_sink(&recvs, format!("out:{}", sp.name));
            census.inputs += 1;
            census.outputs += 1;
            outputs.push(OutputSpec {
                variable: sp.name.clone(),
                elements: merged_elems,
                output: out,
            });
        } else {
            for p in pipe_ios {
                b.source(
                    p.entry,
                    &p.values,
                    format!("in:{}@{}", sp.name, point::fmt_point(&p.head)),
                );
                census.inputs += 1;
                let (_, out) = b.sink(
                    p.exit,
                    p.elements.len(),
                    format!("out:{}@{}", sp.name, point::fmt_point(&p.tail)),
                );
                census.outputs += 1;
                outputs.push(OutputSpec {
                    variable: sp.name.clone(),
                    elements: p.elements,
                    output: out,
                });
            }
        }
    }

    // Processes at every PS point, querying the prebaked integer forms.
    let mut comp_at = Vec::new();
    for y in &ps_points {
        let yi = psidx.at(y);
        yx[..nc].copy_from_slice(y);
        if let Some(first) = skel.first.point_at(&yx) {
            let count = skel.count.at(&yx);
            let mut moving: Vec<MovingLink> = Vec::new();
            let mut soaks: Vec<ProcOp> = Vec::new();
            for sp in &skel.streams {
                if sp.kind == StreamKind::Moving {
                    let (ic, oc) = endpoint[sp.id][yi];
                    let soak = sp.soak.at(&yx);
                    let drain = sp.drain.at(&yx);
                    if opts.split_propagation {
                        let cs = chans.next(); // splitter -> comp
                        let cm = chans.next(); // comp -> merger
                        let sm = chans.next(); // splitter -> merger
                        b.segment_relay(
                            &[
                                (ic, sm, soak.max(0) as usize),
                                (ic, cs, count.max(0) as usize),
                                (ic, sm, drain.max(0) as usize),
                            ],
                            format!("split:{}@{}", sp.name, point::fmt_point(y)),
                        );
                        b.segment_relay(
                            &[
                                (sm, oc, soak.max(0) as usize),
                                (cm, oc, count.max(0) as usize),
                                (sm, oc, drain.max(0) as usize),
                            ],
                            format!("merge:{}@{}", sp.name, point::fmt_point(y)),
                        );
                        census.escorts += 2;
                        moving.push(MovingLink {
                            slot: sp.id as u32,
                            inp: cs,
                            out: cm,
                        });
                    } else {
                        soaks.push(ProcOp::Pass {
                            inp: ic,
                            out: oc,
                            n: soak.max(0) as u64,
                        });
                        moving.push(MovingLink {
                            slot: sp.id as u32,
                            inp: ic,
                            out: oc,
                        });
                    }
                }
            }
            b.begin(format!("comp@{}", point::fmt_point(y)));
            for sp in &skel.streams {
                if let StreamKind::Stationary { .. } = sp.kind {
                    let (ic, oc) = endpoint[sp.id][yi];
                    let drain = sp.drain.at(&yx);
                    b.op(ProcOp::Keep {
                        chan: ic,
                        slot: sp.id as u32,
                    });
                    b.op(ProcOp::Pass {
                        inp: ic,
                        out: oc,
                        n: drain.max(0) as u64,
                    });
                }
            }
            for op in &soaks {
                b.op(*op);
            }
            b.op(ProcOp::Compute {
                count: count.max(0) as u64,
            });
            if !opts.split_propagation {
                for sp in &skel.streams {
                    if sp.kind == StreamKind::Moving {
                        let (ic, oc) = endpoint[sp.id][yi];
                        let drain = sp.drain.at(&yx);
                        b.op(ProcOp::Pass {
                            inp: ic,
                            out: oc,
                            n: drain.max(0) as u64,
                        });
                    }
                }
            }
            for sp in &skel.streams {
                if let StreamKind::Stationary { .. } = sp.kind {
                    let (ic, oc) = endpoint[sp.id][yi];
                    let soak = sp.soak.at(&yx);
                    b.op(ProcOp::Pass {
                        inp: ic,
                        out: oc,
                        n: soak.max(0) as u64,
                    });
                    b.op(ProcOp::Eject {
                        chan: oc,
                        slot: sp.id as u32,
                    });
                }
            }
            b.repeater(&moving, &first, &skel.increment, skel.n_slots);
            let pid = b.finish();
            comp_at.push((y.clone(), pid));
            census.computation += 1;
        } else {
            for sp in &skel.streams {
                let (ic, oc) = endpoint[sp.id][yi];
                let n = pipe_n[sp.id][yi];
                b.relay(
                    ic,
                    oc,
                    n.max(0) as usize,
                    format!("extbuf:{}@{}", sp.name, point::fmt_point(y)),
                );
                census.external_buffers += 1;
            }
        }
    }

    census.channels = chans.0;
    let endpoints = skel
        .streams
        .iter()
        .flat_map(|sp| {
            let row = &endpoint[sp.id];
            let psidx = &psidx;
            ps_points.iter().map(move |y| {
                let (ic, oc) = row[psidx.at(y)];
                (sp.id, y.clone(), ic, oc)
            })
        })
        .collect();
    b.set_kernel(skel.kernel.clone(), skel.kernel_reject.clone());
    let module = b.build(Some(skel.body.clone()));
    Ok(Elaborated {
        module,
        outputs,
        census,
        endpoints,
        comp_at,
    })
}

/// All points of an inclusive box, row-major — the concrete analogue of
/// `SystolicProgram::ps_points`.
fn enumerate_box(bx: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut p: Vec<i64> = bx.iter().map(|&(lo, _)| lo).collect();
    if bx.iter().any(|&(lo, hi)| lo > hi) {
        return out;
    }
    loop {
        out.push(p.clone());
        let mut d = bx.len();
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            p[d] += 1;
            if p[d] <= bx[d].1 {
                break;
            }
            p[d] = bx[d].0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use systolic_core::{compile, Options};
    use systolic_synthesis::placement::paper;

    #[test]
    fn skeleton_instantiation_is_bit_identical_to_direct_elaboration() {
        for (label, p, a) in paper::all() {
            let plan = compile(&p, &a, &Options::default()).unwrap();
            let opts = ElabOptions::default();
            let skel = elaborate_skeleton(&plan, &opts);
            for n in [1i64, 3, 5] {
                let mut env = Env::new();
                env.bind(plan.source.sizes[0], n);
                let store = HostStore::allocate(&plan.source, &env);
                let direct = elaborate(&plan, &env, &store, &opts).unwrap();
                let two_phase = instantiate(&skel, &env, &store).unwrap();
                assert!(
                    direct.module.same_structure(&two_phase.module),
                    "{label} n={n}: module structure diverges"
                );
                assert_eq!(direct.census, two_phase.census, "{label} n={n}");
                assert_eq!(direct.outputs, two_phase.outputs, "{label} n={n}");
                assert_eq!(direct.endpoints, two_phase.endpoints, "{label} n={n}");
                assert_eq!(direct.comp_at, two_phase.comp_at, "{label} n={n}");
            }
        }
    }

    #[test]
    fn skeleton_errors_match_direct_elaboration() {
        let (p, a) = paper::polyprod_d1();
        let plan = compile(&p, &a, &Options::default()).unwrap();
        let mut env = Env::new();
        env.bind(plan.source.sizes[0], 2);
        let skel = elaborate_skeleton(&plan, &ElabOptions::default());
        let empty = HostStore::new();
        let Err(direct) = elaborate(&plan, &env, &empty, &ElabOptions::default()) else {
            panic!("elaboration must fail without host arrays");
        };
        let Err(two_phase) = instantiate(&skel, &env, &empty) else {
            panic!("instantiation must fail without host arrays");
        };
        assert_eq!(direct, two_phase);
    }
}
